"""Array-backed matching kernels: merge-join intersection over sorted columns.

PR 5 moved the matcher onto dense integer ids but kept its hot loops on
Python *sets* of ints.  This module adds the next substrate down: flat
sorted columns (contiguous value lists with per-row offset bounds, plus
parallel numpy ``int64`` arrays when available) over which candidate
narrowing becomes galloping merge-join intersection instead of per-element
hash probes.  Three kernels implement one interface:

* ``vectorized`` — numpy-accelerated: candidate pools filter via
  ``searchsorted`` membership and bit-matrix signature containment, and
  large frontiers intersect as vectorized merge-joins.  The default
  whenever numpy imports.
* ``python``     — the same sorted-column layout and batched frontier with
  ``bisect`` galloping only; selected automatically when numpy is missing.
  Keeps the fallback path honest: same interface, same answers, same
  ``search_steps``.
* ``sets``       — the PR 5 set-based path, kept verbatim as the reference
  oracle the parity suites and ``bench_kernel.py`` compare against.

Selection: ``$REPRO_KERNEL`` (one of :data:`KERNEL_CHOICES`) overrides;
otherwise :func:`default_kernel` picks ``vectorized`` if numpy imports and
``python`` otherwise.  The choice never changes results: every kernel
yields the identical match *sequence* and the identical ``search_steps``
counter (see ``docs/performance.md`` for why the decomposition is exact).

The sorted columns live on the :class:`~repro.store.encoding.EncodedGraph`
(one cache per flavor), are built lazily per predicate, memoized per graph
version, and invalidated *per predicate* when ``apply_ops`` patches the
encoding — an incremental mutation touches only the mutated predicates'
columns, everything else stays warm.

Sharding: the backtracking search tree decomposes exactly by the first
vertex's candidate list — nothing is assigned at depth 0, so no narrowing
applies and the frontier is always the full sorted pool.  Slicing that
pool into K contiguous ranges therefore partitions the match sequence and
the step counts exactly; :meth:`MatchRunner.frontier` takes the slice and
:mod:`repro.core.site_tasks` fans the slices out as sub-site tasks.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import IRI, Literal, PatternTerm, Variable
from ..sparql.query_graph import QueryEdge, QueryGraph
from .encoding import PREDICATE_ANY, EncodedGraph, predicate_code

#: numpy-accelerated pools, signatures, and large-frontier merge-joins.
KERNEL_VECTORIZED = "vectorized"
#: The same sorted-column kernel on plain Python lists (no numpy needed).
KERNEL_PYTHON = "python"
#: The PR 5 set-based reference path (the parity oracle).
KERNEL_SETS = "sets"
#: Every selectable kernel, in preference order.
KERNEL_CHOICES = (KERNEL_VECTORIZED, KERNEL_PYTHON, KERNEL_SETS)
#: Environment variable overriding the kernel for the whole process (and,
#: through environment inheritance, for process-pool workers).
KERNEL_ENV = "REPRO_KERNEL"

#: Below this driving-column size the vectorized kernel intersects a
#: frontier by galloping ``bisect`` probes instead of a numpy merge — the
#: crossover where array setup costs more than O(k log n) scalar probes.
#: Purely a performance knob; results are identical on both sides.
SMALL_FRONTIER = 64

_NUMPY = None
_NUMPY_CHECKED = False


def numpy_or_none():
    """The numpy module, or ``None`` when it cannot be imported.

    Checked once per process; tests monkeypatch ``_NUMPY``/``_NUMPY_CHECKED``
    to simulate a numpy-free environment without uninstalling anything.
    """
    global _NUMPY, _NUMPY_CHECKED
    if not _NUMPY_CHECKED:
        try:
            import numpy
        except ImportError:  # pragma: no cover - exercised by the numpy-free CI leg
            numpy = None
        _NUMPY = numpy
        _NUMPY_CHECKED = True
    return _NUMPY


def default_kernel() -> str:
    """The kernel this process runs without explicit selection.

    ``$REPRO_KERNEL`` wins when set; otherwise ``vectorized`` if numpy
    imports, ``python`` if it does not.
    """
    env = os.environ.get(KERNEL_ENV)
    if env:
        return resolve_kernel(env)
    return KERNEL_VECTORIZED if numpy_or_none() is not None else KERNEL_PYTHON


def resolve_kernel(name: Optional[str] = None) -> str:
    """Validate ``name`` (``None`` means :func:`default_kernel`).

    Raises ``ValueError`` for unknown names and for ``vectorized`` when
    numpy is not importable, listing the valid choices — the same error
    contract as every other bad argument in the package.
    """
    if name is None:
        return default_kernel()
    if name not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {name!r}; choose from: {', '.join(KERNEL_CHOICES)}"
        )
    if name == KERNEL_VECTORIZED and numpy_or_none() is None:
        raise ValueError(
            "kernel 'vectorized' needs numpy, which is not installed; "
            "choose from: python, sets"
        )
    return name


def shard_bounds(count: int, shard_index: int, num_shards: int) -> Tuple[int, int]:
    """The contiguous slice of ``count`` depth-0 candidates shard ``k`` owns.

    ``[k*n//K, (k+1)*n//K)`` — the slices partition ``range(count)`` exactly,
    so concatenating the shards' match streams in shard order reproduces the
    unsharded stream and the unsharded step totals.
    """
    if not 0 <= shard_index < num_shards:
        raise ValueError(f"shard {shard_index} outside 0..{num_shards - 1}")
    return (
        (shard_index * count) // num_shards,
        ((shard_index + 1) * count) // num_shards,
    )


# ----------------------------------------------------------------------
# Sorted adjacency columns (cached per EncodedGraph, per flavor)
# ----------------------------------------------------------------------
class SortedColumn:
    """One predicate-direction's CSR adjacency: sorted keys, offset rows.

    ``values`` is always a flat Python list (contiguous sorted rows), so the
    scalar gallop path probes it with ``bisect_left(values, item, lo, hi)``
    — no slicing, no element boxing.  ``array``/``keys_array`` are parallel
    numpy ``int64`` views built only for the vectorized flavor, used when a
    frontier is large enough for a vectorized merge to win.
    """

    __slots__ = ("keys", "keys_array", "values", "array", "offsets", "_rows")

    def __init__(self, np_module, rows: List[Tuple[int, Sequence[int]]]) -> None:
        self.keys: List[int] = [key for key, _ in rows]
        flat: List[int] = []
        offsets = [0]
        for _, row_values in rows:
            flat.extend(row_values)
            offsets.append(len(flat))
        self.values = flat
        self.offsets = offsets
        self._rows = {key: position for position, (key, _) in enumerate(rows)}
        if np_module is not None:
            self.array = np_module.array(flat, dtype=np_module.int64)
            self.keys_array = np_module.array(self.keys, dtype=np_module.int64)
        else:
            self.array = None
            self.keys_array = None

    def bounds(self, key: int) -> Optional[Tuple[int, int]]:
        """``(lo, hi)`` bounds of ``key``'s row in ``values`` (None if absent)."""
        position = self._rows.get(key)
        if position is None:
            return None
        return self.offsets[position], self.offsets[position + 1]

    def row(self, key: int):
        """The sorted neighbour ids of ``key`` (empty sequence when absent).

        Array slice in the vectorized flavor, list slice otherwise — either
        way a sorted sequence the pool paths can merge or probe.
        """
        span = self.bounds(key)
        if span is None:
            return self.array[:0] if self.array is not None else []
        if self.array is not None:
            return self.array[span[0] : span[1]]
        return self.values[span[0] : span[1]]

    def all_keys(self):
        """Every row key in sorted order (the predicate's endpoint pool)."""
        return self.keys_array if self.keys_array is not None else self.keys


class SortedAdjacency:
    """Per-predicate sorted adjacency columns over one :class:`EncodedGraph`.

    Columns are built lazily (first probe of a predicate/direction pair) and
    memoized until :meth:`invalidate` drops exactly the predicates an
    ``apply_ops`` patch touched — the incremental counterpart of
    :func:`~repro.store.encoding.patch_encoded_view`.  The memoized
    :meth:`vertex_pool` / column key arrays are also the once-per-version
    sorted candidate pools the matcher reuses across warm-session queries
    (they replace the per-query ``sorted(pool)`` of the set path).
    """

    __slots__ = ("encoded", "flavor", "np", "_out", "_in", "_vertex_pool")

    def __init__(self, encoded: EncodedGraph, flavor: str) -> None:
        self.encoded = encoded
        self.flavor = flavor
        self.np = numpy_or_none() if flavor == KERNEL_VECTORIZED else None
        if flavor == KERNEL_VECTORIZED and self.np is None:
            raise ValueError("vectorized adjacency needs numpy")
        self._out: Dict[int, SortedColumn] = {}
        self._in: Dict[int, SortedColumn] = {}
        self._vertex_pool: Optional[Tuple[List[int], object]] = None

    def invalidate(self, codes: Set[int]) -> None:
        """Drop the columns for the mutated predicates (and the ANY rollups)."""
        for code in codes:
            self._out.pop(code, None)
            self._in.pop(code, None)
        self._out.pop(PREDICATE_ANY, None)
        self._in.pop(PREDICATE_ANY, None)
        self._vertex_pool = None

    def _build(self, source: Dict[int, Set[int]], keys) -> SortedColumn:
        return SortedColumn(
            self.np, [(key, sorted(source[key])) for key in sorted(keys)]
        )

    def out_column(self, code: int) -> SortedColumn:
        """The subject→objects column of ``code`` (empty for absent codes)."""
        column = self._out.get(code)
        if column is None:
            encoded = self.encoded
            if code == PREDICATE_ANY:
                column = self._build(encoded._out_nbrs, encoded._out_nbrs)
            elif code >= 0:
                subjects = encoded._p_subjects.get(code, ())
                column = self._build(
                    {s: encoded._spo[s][code] for s in subjects}, subjects
                )
            else:
                column = SortedColumn(self.np, [])
            self._out[code] = column
        return column

    def in_column(self, code: int) -> SortedColumn:
        """The object→subjects column of ``code`` (empty for absent codes)."""
        column = self._in.get(code)
        if column is None:
            encoded = self.encoded
            if code == PREDICATE_ANY:
                column = self._build(encoded._in_nbrs, encoded._in_nbrs)
            elif code >= 0:
                by_object = encoded._pos.get(code, {})
                column = self._build(by_object, by_object)
            else:
                column = SortedColumn(self.np, [])
            self._in[code] = column
        return column

    # -- kernel probes (sorted-sequence counterparts of EncodedGraph's) ----
    def objects_from(self, subject_id: int, code: int):
        """Sorted ids of objects reached from ``subject_id`` via ``code``."""
        return self.out_column(code).row(subject_id)

    def subjects_to(self, code: int, object_id: int):
        """Sorted ids of subjects reaching ``object_id`` via ``code``."""
        return self.in_column(code).row(object_id)

    def subject_keys(self, code: int):
        """Sorted ids of all subjects of ``code`` (memoized per version)."""
        return self.out_column(code).all_keys()

    def object_keys(self, code: int):
        """Sorted ids of all objects of ``code`` (memoized per version)."""
        return self.in_column(code).all_keys()

    def vertex_pool(self) -> Tuple[List[int], object]:
        """Every vertex id in candidate-sort order, as ``(list, array)``.

        The array element is ``None`` outside the vectorized flavor.
        Memoized per graph version — the "all vertices" candidate pool is
        sorted once, not once per query.
        """
        pool = self._vertex_pool
        if pool is None:
            ids = list(self.encoded.sorted_vertex_ids)
            array = (
                self.np.array(ids, dtype=self.np.int64) if self.np is not None else None
            )
            pool = (ids, array)
            self._vertex_pool = pool
        return pool


def adjacency_view(encoded: EncodedGraph, flavor: str) -> SortedAdjacency:
    """The (cached) sorted-column adjacency of ``encoded`` for ``flavor``."""
    cache = encoded._kernel_adjacency
    adjacency = cache.get(flavor)
    if adjacency is None:
        adjacency = SortedAdjacency(encoded, flavor)
        cache[flavor] = adjacency
    return adjacency


# ----------------------------------------------------------------------
# Sorted-sequence primitives
# ----------------------------------------------------------------------
def _as_list(values) -> List[int]:
    """A plain Python list of ids from a list, tuple, or numpy array."""
    if isinstance(values, list):
        return values
    tolist = getattr(values, "tolist", None)
    if tolist is not None:
        return tolist()
    return list(values)


def _member_mask(np, values, sorted_column):
    """Vectorized membership of ``values`` in ``sorted_column`` (both sorted)."""
    if not len(sorted_column):
        return np.zeros(len(values), dtype=bool)
    positions = np.searchsorted(sorted_column, values)
    positions[positions == len(sorted_column)] = len(sorted_column) - 1
    return sorted_column[positions] == values


def signature_words(bits: int, width: int, np) -> "object":
    """A signature bitset as a little-endian ``uint64`` word vector."""
    words = [0] * ((width + 63) // 64)
    position = 0
    while bits:
        words[position] = bits & 0xFFFFFFFFFFFFFFFF
        bits >>= 64
        position += 1
    return np.array(words, dtype=np.uint64)


# ----------------------------------------------------------------------
# Compiled query vertices (one shape per runner family)
# ----------------------------------------------------------------------
class CompiledSetVertex:
    """The PR 5 compiled vertex: id-set pool plus integer edge tuples."""

    __slots__ = ("index", "pool", "sorted_pool", "narrow_edges", "check_edges")

    def __init__(
        self,
        index: int,
        pool: Set[int],
        narrow_edges: List[Tuple[bool, int, int]],
        check_edges: List[Tuple[bool, int, bool, int, int]],
    ) -> None:
        self.index = index
        self.pool = pool
        #: Ids sort exactly like the old ``(type, n3)`` candidate order, so
        #: this sort happens once per query instead of once per search step.
        self.sorted_pool = sorted(pool)
        #: ``(vertex_is_subject, predicate_code, other_vertex_index)`` per
        #: incident non-loop edge, in query-edge order.
        self.narrow_edges = narrow_edges
        #: ``(subject_is_self, subject_index, object_is_self, object_index,
        #: predicate_code)`` per incident edge (loops included).
        self.check_edges = check_edges


class CompiledArrayVertex:
    """A query vertex compiled for the array kernels.

    The pool is already in id (= candidate) order — pools come out of
    :meth:`ArrayRunner.compute_pools` sorted — held as a plain list for the
    gallop path plus a parallel array for vectorized merges.  Narrowing
    carries only the non-loop incident edges, pre-resolved to their
    adjacency columns; the only residual per-candidate checks are
    self-loops: a non-loop edge toward an *assigned* neighbour is enforced
    by intersecting that neighbour's adjacency row into the frontier, and
    an edge toward an unassigned neighbour is checked when that neighbour's
    own frontier narrows through this vertex — exactly the cases the set
    path's ``_consistent`` covers.
    """

    __slots__ = ("index", "pool_list", "pool_array", "narrow_columns", "loop_codes")

    def __init__(
        self,
        index: int,
        pool_list: List[int],
        pool_array,
        narrow_columns: List[Tuple[Dict[int, int], List[int], List[int], object, int]],
        loop_codes: List[int],
    ) -> None:
        self.index = index
        self.pool_list = pool_list
        self.pool_array = pool_array
        #: ``(row index, offsets, values, array, other_vertex_index)`` per
        #: incident non-loop edge — the internals of the adjacency column
        #: whose row at the other endpoint's assignment narrows this
        #: vertex's frontier, flattened so the per-depth hot loop runs on
        #: plain dict/list lookups.  Columns never change within one
        #: ``find_matches`` call (invalidation happens on graph mutation,
        #: between calls), so caching their internals here is safe.
        self.narrow_columns = narrow_columns
        self.loop_codes = loop_codes


# ----------------------------------------------------------------------
# Match runners: one per kernel, one interface
# ----------------------------------------------------------------------
class MatchRunner:
    """One ``find_matches`` call's kernel state (never shared across calls).

    The matcher drives the same three steps whatever the kernel:
    :meth:`compute_pools` (per-vertex candidate pools, sorted in id order),
    :meth:`compile` (query vertices to integer tuples in visit order), and
    :meth:`frontier` (the batched candidate list for one search depth).
    ``intersections`` counts candidate-set merge operations — the work
    metric behind ``repro_kernel_intersections_total``.
    """

    kernel = ""

    def __init__(self, encoded: EncodedGraph, signature_index) -> None:
        self.encoded = encoded
        self.signatures = signature_index
        #: Candidate-pool/frontier intersection operations performed so far.
        self.intersections = 0

    def compute_pools(
        self,
        query: QueryGraph,
        relaxed_edges: Optional[Dict[PatternTerm, Set[int]]] = None,
    ) -> Dict[PatternTerm, Sequence[int]]:
        raise NotImplementedError

    def compile(self, query, order, pools) -> List[object]:
        raise NotImplementedError

    def frontier(
        self,
        vertex,
        assignment: List[Optional[int]],
        shard: Optional[Tuple[int, int]] = None,
    ) -> Tuple[List[int], int]:
        """``(surviving candidates, candidates tried)`` for one search depth.

        ``tried`` is the number of ordered candidates *before* the residual
        consistency filter — exactly what the set path charged
        ``search_steps`` per depth, so totals agree bit-for-bit.  ``shard``
        (depth 0 only) slices the ordered candidates before counting, which
        is what makes per-shard step counts sum to the unsharded total.
        """
        raise NotImplementedError


class SetRunner(MatchRunner):
    """The PR 5 reference kernel: hash-set narrowing + per-edge probes."""

    kernel = KERNEL_SETS

    def compute_pools(self, query, relaxed_edges=None):
        from .candidates import compute_candidate_ids

        return compute_candidate_ids(
            self.encoded, query, self.signatures, relaxed_edges, kernel=KERNEL_SETS
        )

    def compile(self, query, order, pools):
        compiled: List[CompiledSetVertex] = []
        encoded = self.encoded
        for vertex in order:
            vertex_index = query.vertex_index(vertex)
            narrow_edges: List[Tuple[bool, int, int]] = []
            check_edges: List[Tuple[bool, int, bool, int, int]] = []
            for edge in query.edges_of(vertex):
                code = predicate_code(encoded, edge.predicate)
                subject_index = query.vertex_index(edge.subject)
                object_index = query.vertex_index(edge.object)
                check_edges.append(
                    (
                        edge.subject == vertex,
                        subject_index,
                        edge.object == vertex,
                        object_index,
                        code,
                    )
                )
                other = edge.other_endpoint(vertex)
                if other == vertex:
                    continue  # self-loop: no already-assigned "other" side
                if edge.subject == vertex:
                    narrow_edges.append((True, code, object_index))
                else:
                    narrow_edges.append((False, code, subject_index))
            compiled.append(
                CompiledSetVertex(vertex_index, pools[vertex], narrow_edges, check_edges)
            )
        return compiled

    def frontier(self, vertex, assignment, shard=None):
        encoded = self.encoded
        narrowed: Optional[Set[int]] = None
        for is_subject, code, other_index in vertex.narrow_edges:
            other_value = assignment[other_index]
            if other_value is None:
                continue
            if is_subject:
                reachable = encoded.subjects_to(code, other_value)
            else:
                reachable = encoded.objects_from(other_value, code)
            if narrowed is None:
                narrowed = reachable
            else:
                narrowed = narrowed & reachable
                self.intersections += 1
            if not narrowed:
                return [], 0
        if narrowed is None:
            ordered: Sequence[int] = vertex.sorted_pool
        else:
            narrowed = narrowed & vertex.pool
            self.intersections += 1
            if not narrowed:
                return [], 0
            ordered = sorted(narrowed)
        if shard is not None:
            lo, hi = shard_bounds(len(ordered), *shard)
            ordered = ordered[lo:hi]
        tried = len(ordered)
        survivors = [
            candidate
            for candidate in ordered
            if self._consistent(vertex, candidate, assignment)
        ]
        return survivors, tried

    def _consistent(self, vertex, candidate: int, assignment) -> bool:
        """Check every query edge between ``vertex`` and determined vertices."""
        has_edge = self.encoded.has_edge
        for subject_is_self, subject_index, object_is_self, object_index, code in (
            vertex.check_edges
        ):
            subject_value = candidate if subject_is_self else assignment[subject_index]
            object_value = candidate if object_is_self else assignment[object_index]
            if subject_value is None or object_value is None:
                continue
            if not has_edge(subject_value, code, object_value):
                return False
        return True


class ArrayRunner(MatchRunner):
    """Sorted-column kernel shared by the ``vectorized`` and ``python`` flavors.

    Candidate pools and frontiers are sorted sequences; narrowing is a
    merge-join over the adjacency rows of already-assigned neighbours (plus
    the pool itself), smallest row driving.  Because every non-loop incident
    edge toward an assigned vertex participates in the merge, the only
    residual per-candidate check is the self-loop probe — the set path's
    consistency verdicts are reproduced exactly, at merge-join cost.

    The two flavors share all control flow; the vectorized one additionally
    switches to numpy ``searchsorted`` merges above :data:`SMALL_FRONTIER`
    and filters candidate pools with bit-matrix signature containment.
    """

    def __init__(self, encoded, signature_index, flavor: str) -> None:
        super().__init__(encoded, signature_index)
        self.kernel = flavor
        self.adjacency = adjacency_view(encoded, flavor)
        self._np = self.adjacency.np

    # -- candidate pools -------------------------------------------------
    def compute_pools(self, query, relaxed_edges=None):
        relaxed_edges = relaxed_edges or {}
        pools: Dict[PatternTerm, Sequence[int]] = {}
        for query_vertex in query.vertices:
            if isinstance(query_vertex, (IRI, Literal)):
                vertex_id = self.encoded.dictionary.get(query_vertex)
                if vertex_id is not None and self.encoded.is_vertex(vertex_id):
                    pools[query_vertex] = [vertex_id]
                else:
                    pools[query_vertex] = []
            else:
                pools[query_vertex] = self._variable_pool(
                    query, query_vertex, relaxed_edges.get(query_vertex, set())
                )
        return pools

    def _endpoint_column(self, edge: QueryEdge, query_vertex: PatternTerm):
        """Sorted ids that could sit at ``query_vertex``'s end of ``edge``.

        The sorted-column counterpart of the set path's per-edge endpoint
        sets: membership in this sequence *is* edge support, so the same
        sequence drives both seeding and support filtering.
        """
        encoded = self.encoded
        adjacency = self.adjacency
        code = predicate_code(encoded, edge.predicate)
        if edge.subject == query_vertex:
            other = edge.object
            if isinstance(other, Variable):
                return adjacency.subject_keys(code)
            other_id = encoded.dictionary.get(other)
            if other_id is None:
                return []
            return adjacency.subjects_to(code, other_id)
        other = edge.subject
        if isinstance(other, Variable):
            return adjacency.object_keys(code)
        other_id = encoded.dictionary.get(other)
        if other_id is None:
            return []
        return adjacency.objects_from(other_id, code)

    def _variable_pool(self, query, query_vertex, relaxed: Set[int]):
        required = [
            edge for edge in query.edges_of(query_vertex) if edge.index not in relaxed
        ]
        if not required:
            # Every incident edge was relaxed: any vertex could match.
            ids, array = self.adjacency.vertex_pool()
            return array if array is not None else ids
        columns = []
        for edge in required:
            column = self._endpoint_column(edge, query_vertex)
            if not len(column):
                return []
            columns.append(column)
        seed_position = min(range(len(columns)), key=lambda i: len(columns[i]))
        seed = columns[seed_position]
        needed = self.signatures.query_signature(
            query, query_vertex, skip_edges=relaxed
        ).bits
        others = [
            column
            for position, column in enumerate(columns)
            if position != seed_position
        ]
        if self._np is not None:
            return self._filter_pool_numpy(seed, needed, others)
        return self._filter_pool_python(seed, needed, others)

    def _filter_pool_numpy(self, seed, needed: int, others):
        np = self._np
        mask = None
        if needed:
            matrix = self.signatures.bits_matrix(self.encoded)
            words = signature_words(needed, self.signatures.width, np)
            mask = ((matrix[seed] & words) == words).all(axis=1)
        for column in others:
            self.intersections += 1
            member = _member_mask(np, seed, column)
            mask = member if mask is None else (mask & member)
        if mask is None:
            return seed
        return seed[mask]

    def _filter_pool_python(self, seed, needed: int, others):
        bits_by_id = self.signatures.bits_table(self.encoded)
        survivors = []
        self.intersections += len(others)
        for vertex_id in seed:
            if needed and (bits_by_id[vertex_id] & needed) != needed:
                continue
            supported = True
            for column in others:
                position = bisect_left(column, vertex_id)
                if position >= len(column) or column[position] != vertex_id:
                    supported = False
                    break
            if supported:
                survivors.append(vertex_id)
        return survivors

    # -- compilation -----------------------------------------------------
    def compile(self, query, order, pools):
        compiled: List[CompiledArrayVertex] = []
        encoded = self.encoded
        adjacency = self.adjacency
        np = self._np
        for vertex in order:
            vertex_index = query.vertex_index(vertex)
            narrow_columns = []
            loop_codes: List[int] = []
            for edge in query.edges_of(vertex):
                code = predicate_code(encoded, edge.predicate)
                if edge.other_endpoint(vertex) == vertex:
                    loop_codes.append(code)
                    continue
                # The row to intersect is keyed by the *other* endpoint's
                # assignment: vertex-as-subject narrows through the inbound
                # column of the object, and vice versa.
                if edge.subject == vertex:
                    column = adjacency.in_column(code)
                    other_index = query.vertex_index(edge.object)
                else:
                    column = adjacency.out_column(code)
                    other_index = query.vertex_index(edge.subject)
                narrow_columns.append(
                    (
                        column._rows,
                        column.offsets,
                        column.values,
                        column.array,
                        other_index,
                    )
                )
            pool = pools[vertex]
            if isinstance(pool, list):
                pool_list = pool
                pool_array = (
                    np.array(pool, dtype=np.int64) if np is not None else None
                )
            else:
                pool_array = pool
                pool_list = pool.tolist()
            compiled.append(
                CompiledArrayVertex(
                    vertex_index, pool_list, pool_array, narrow_columns, loop_codes
                )
            )
        return compiled

    # -- the batched frontier --------------------------------------------
    def frontier(self, vertex, assignment, shard=None):
        spans = None
        for rows, offsets, values, array, other_index in vertex.narrow_columns:
            other_value = assignment[other_index]
            if other_value is None:
                continue
            position = rows.get(other_value)
            if position is None:
                return [], 0
            lo = offsets[position]
            hi = offsets[position + 1]
            if spans is None:
                spans = [(hi - lo, values, array, lo, hi)]
            else:
                spans.append((hi - lo, values, array, lo, hi))
        if spans is None:
            # Nothing adjacent assigned yet: the frontier is the whole pool
            # (always the depth-0 case, where the shard slice applies).
            survivors = vertex.pool_list
            if shard is not None:
                lo, hi = shard_bounds(len(survivors), *shard)
                survivors = survivors[lo:hi]
            tried = len(survivors)
        else:
            pool_list = vertex.pool_list
            spans.append(
                (len(pool_list), pool_list, vertex.pool_array, 0, len(pool_list))
            )
            # The smallest span drives the merge; the rest are probe targets
            # (their relative order does not matter, so no sort).
            best = 0
            for position in range(1, len(spans)):
                if spans[position][0] < spans[best][0]:
                    best = position
            smallest = spans[best]
            rest = spans[:best] + spans[best + 1 :]
            self.intersections += len(rest)
            if self._np is None or smallest[0] <= SMALL_FRONTIER:
                # Scalar gallop: iterate the smallest row in place, probe
                # the other rows with bounded bisects on the flat lists.
                _, values, _, lo, hi = smallest
                survivors = []
                add = survivors.append
                for position in range(lo, hi):
                    item = values[position]
                    for _, other_values, _, other_lo, other_hi in rest:
                        probe = bisect_left(other_values, item, other_lo, other_hi)
                        if probe >= other_hi or other_values[probe] != item:
                            break
                    else:
                        add(item)
            else:
                np = self._np
                current = smallest[2][smallest[3] : smallest[4]]
                for _, _, other_array, other_lo, other_hi in rest:
                    current = current[
                        _member_mask(np, current, other_array[other_lo:other_hi])
                    ]
                    if not len(current):
                        return [], 0
                survivors = current.tolist()
            if shard is not None:
                lo, hi = shard_bounds(len(survivors), *shard)
                survivors = survivors[lo:hi]
            tried = len(survivors)
        if vertex.loop_codes:
            has_edge = self.encoded.has_edge
            for code in vertex.loop_codes:
                survivors = [
                    candidate
                    for candidate in survivors
                    if has_edge(candidate, code, candidate)
                ]
        return survivors, tried


def make_runner(kernel: str, encoded: EncodedGraph, signature_index) -> MatchRunner:
    """One fresh per-call runner for ``kernel`` (already resolved)."""
    if kernel == KERNEL_SETS:
        return SetRunner(encoded, signature_index)
    return ArrayRunner(encoded, signature_index, kernel)
