"""Centralized BGP matcher (subgraph homomorphism search).

This is the "local evaluation inside one site" engine and also the
ground-truth centralized evaluator used by the tests: finding all matches of
a BGP query over an RDF graph is finding all subgraph homomorphisms from the
query graph to the data graph (Definition 3).

The matcher is a classic backtracking search over the query vertices in a
connectivity-preserving order, with candidate filtering (signatures +
per-edge support) done upfront.  Variables on predicates are supported.
Distinct query vertices may map to the same data vertex (homomorphism, not
isomorphism), matching SPARQL semantics.

Since the dictionary-encoding PR the search runs entirely on dense integer
ids from :mod:`repro.store.encoding`; since the vectorized-kernel PR the
per-depth candidate computation is delegated to a pluggable *match runner*
(:mod:`repro.store.kernel`): the ``vectorized`` kernel narrows candidates by
galloping merge-join over sorted numpy columns, ``python`` does the same
over sorted lists, and ``sets`` is the original hash-set path kept as the
reference oracle.  The search itself is a batched backtracking frontier —
one runner call computes a whole depth's ordered candidates at once — and
every kernel produces the identical match sequence and identical
``search_steps`` (the frontier's pre-consistency candidate count per depth,
exactly what the per-candidate loop used to charge).

The first search depth can additionally be sliced into contiguous shards
(:meth:`LocalMatcher.shard_matches`): nothing is assigned at depth 0, so the
depth-0 frontier is always the full sorted pool, and slicing it partitions
the match sequence and the step counts exactly — the foundation of
intra-site sharding in :mod:`repro.core.site_tasks`.

Assignments decode back to :class:`~repro.rdf.terms.Node` objects only when
a complete match is yielded.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..planner.optimizer import QueryPlanner
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, PatternTerm, Variable
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding, ResultSet
from ..sparql.query_graph import QueryGraph, traversal_order
from .encoding import encoded_view
from .kernel import MatchRunner, make_runner, resolve_kernel
from .signatures import SignatureIndex


def finalize_matches(query: SelectQuery, bindings: Iterable[Binding]) -> ResultSet:
    """Turn raw match bindings into the query's final solution sequence.

    Projection, DISTINCT and LIMIT — the per-query postlude that must run
    over the *complete* match stream.  Split out of :meth:`LocalMatcher.
    evaluate` so the sharded path can concatenate per-shard raw bindings in
    shard order and finalize once, producing the bit-identical ``ResultSet``
    the unsharded evaluation yields.
    """
    results = ResultSet(list(bindings), query.variables)
    projected = results.project(query.effective_projection, distinct=query.distinct)
    return projected.limit(query.limit)


class LocalMatcher:
    """Find all matches of BGP queries over a single in-memory RDF graph."""

    def __init__(
        self,
        graph: RDFGraph,
        signature_index: Optional[SignatureIndex] = None,
        planner: Optional[QueryPlanner] = None,
        kernel: Optional[str] = None,
    ) -> None:
        self._graph = graph
        self._signatures = signature_index or SignatureIndex(graph)
        self._planner = planner
        #: Kernel name pinned at construction, or ``None`` to resolve the
        #: process default (``$REPRO_KERNEL``, else vectorized-if-numpy) on
        #: every call — so one warm matcher follows the environment.
        self._kernel = kernel
        #: Number of candidate assignments attempted by the most recent
        #: ``find_matches``/``evaluate`` call (a deterministic work measure
        #: used by the planner benchmarks).
        self.search_steps = 0
        #: Candidate-column intersection operations the most recent call
        #: performed (the kernel's work measure; observability only — unlike
        #: ``search_steps`` it may differ between kernels).
        self.kernel_intersections = 0
        #: Kernel name the most recent call actually ran with.
        self.last_kernel = ""

    @property
    def graph(self) -> RDFGraph:
        return self._graph

    @property
    def signatures(self) -> SignatureIndex:
        return self._signatures

    @property
    def planner(self) -> Optional[QueryPlanner]:
        return self._planner

    @property
    def kernel(self) -> str:
        """The kernel name a call made right now would run with."""
        return resolve_kernel(self._kernel)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate a SELECT/ASK query and return its solutions.

        Disconnected BGPs are evaluated one connected component at a time and
        combined with a cross product, mirroring the paper's assumption that
        connected components are considered separately.
        """
        if not query.bgp.connected_components():
            return ResultSet([], query.effective_projection)
        return finalize_matches(query, self.raw_matches(query))

    def raw_matches(
        self,
        query: SelectQuery,
        shard: Optional[Tuple[int, int]] = None,
    ) -> List[Binding]:
        """Every BGP match of ``query`` as unprojected bindings.

        The shard-mergeable form of :meth:`evaluate`: projection/DISTINCT/
        LIMIT are *not* applied (they only commute with concatenation when
        run over the complete stream — :func:`finalize_matches` does that).

        ``shard`` is a ``(shard_index, num_shards)`` slice of the search:
        single-component queries slice the depth-0 candidate frontier, so
        concatenating the shards' bindings in shard order reproduces the
        unsharded sequence and the per-shard ``search_steps`` sum to the
        unsharded total.  Queries that do not decompose that way (empty or
        multi-component BGPs, whose results are cross products) fall back to
        shard 0 evaluating everything while the other shards return nothing.
        """
        components = query.bgp.connected_components()
        self.search_steps = 0
        self.kernel_intersections = 0
        self.last_kernel = resolve_kernel(self._kernel)
        if not components:
            return []
        if shard is not None and len(components) != 1:
            if shard[0] > 0:
                return []
            shard = None
        partial: List[List[Dict[PatternTerm, Node]]] = []
        steps = 0
        intersections = 0
        for component in components:
            graph = QueryGraph(component)
            partial.append(list(self.find_matches(graph, shard=shard)))
            steps += self.search_steps
            intersections += self.kernel_intersections
        self.search_steps = steps
        self.kernel_intersections = intersections
        combined = partial[0]
        for extra in partial[1:]:
            combined = [{**left, **right} for left in combined for right in extra]
        return [self._to_binding(assignment) for assignment in combined]

    def shard_matches(
        self, query: SelectQuery, shard_index: int, num_shards: int
    ) -> List[Binding]:
        """One shard's slice of :meth:`raw_matches` (see there for the contract)."""
        return self.raw_matches(query, shard=(shard_index, num_shards))

    def find_matches(
        self,
        query: QueryGraph,
        order: Optional[Sequence[PatternTerm]] = None,
        shard: Optional[Tuple[int, int]] = None,
    ) -> Iterator[Dict[PatternTerm, Node]]:
        """Yield complete assignments (query vertex → data vertex) for ``query``.

        The vertex visit order is, in priority: the explicit ``order``
        argument, the attached planner's cost-based order, or the seed's
        static :func:`traversal_order`.  Any permutation of the query
        vertices yields the same matches — the order only changes how much
        of the search space is explored before failures are detected.

        ``shard`` slices the depth-0 frontier (see :meth:`raw_matches`).
        """
        self.search_steps = 0
        self.kernel_intersections = 0
        kernel = resolve_kernel(self._kernel)
        self.last_kernel = kernel
        encoded = encoded_view(self._graph)
        runner = make_runner(kernel, encoded, self._signatures)
        try:
            pools = runner.compute_pools(query)
            if any(len(pools[vertex]) == 0 for vertex in query.vertices):
                return
            if order is not None:
                chosen = list(order)
            elif self._planner is not None:
                chosen = self._planner.order_for(query)
            else:
                chosen = traversal_order(query)
            compiled = runner.compile(query, chosen, pools)
            assignment: List[Optional[int]] = [None] * query.num_vertices
            term_of = encoded.dictionary.term_of
            positions = range(len(compiled))
            for _ in self._extend(assignment, compiled, 0, runner, shard):
                # The inner generator is suspended with every slot assigned,
                # so the complete match decodes straight off the assignment.
                yield {
                    chosen[position]: term_of(assignment[compiled[position].index])
                    for position in positions
                }
        finally:
            self.kernel_intersections += runner.intersections

    def count_matches(self, query: QueryGraph) -> int:
        """Number of complete matches (used by benchmarks)."""
        return sum(1 for _ in self.find_matches(query))

    # ------------------------------------------------------------------
    # Backtracking search (batched frontier over the kernel runner)
    # ------------------------------------------------------------------
    def _extend(
        self,
        assignment: List[Optional[int]],
        compiled: List[object],
        start_depth: int,
        runner: MatchRunner,
        shard: Optional[Tuple[int, int]],
    ) -> Iterator[None]:
        """DFS over the compiled vertices; yields once per complete match.

        Iterative (an explicit per-depth frame stack) rather than nested
        generators: every yielded match would otherwise bubble through one
        generator frame per query vertex.  Each depth's candidate frontier
        is computed in one batched runner call when the depth is first
        entered; ``tried`` — the frontier size before residual consistency
        filtering — is charged to ``search_steps`` right there, exactly the
        count the old per-candidate loop accumulated lazily (all callers
        consume the generator fully, so the totals are identical).
        """
        del start_depth  # the search always starts at depth 0
        if not compiled:
            yield None
            return
        frontier = runner.frontier
        last = len(compiled) - 1
        stack: List[Optional[List[object]]] = [None] * len(compiled)
        depth = 0
        while depth >= 0:
            frame = stack[depth]
            if frame is None:
                survivors, tried = frontier(
                    compiled[depth], assignment, shard if depth == 0 else None
                )
                self.search_steps += tried
                frame = [survivors, 0]
                stack[depth] = frame
            survivors, position = frame
            if position == len(survivors):
                stack[depth] = None
                assignment[compiled[depth].index] = None
                depth -= 1
                continue
            frame[1] = position + 1
            assignment[compiled[depth].index] = survivors[position]
            if depth == last:
                yield None  # the caller reads the complete assignment in place
            else:
                depth += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _to_binding(assignment: Dict[PatternTerm, Node]) -> Binding:
        return Binding({vertex: value for vertex, value in assignment.items() if isinstance(vertex, Variable)})


def evaluate_centralized(
    graph: RDFGraph,
    query: SelectQuery,
    planner: Optional[QueryPlanner] = None,
) -> ResultSet:
    """One-shot convenience wrapper: evaluate ``query`` over ``graph`` centrally."""
    return LocalMatcher(graph, planner=planner).evaluate(query)
