"""Centralized BGP matcher (subgraph homomorphism search).

This is the "local evaluation inside one site" engine and also the
ground-truth centralized evaluator used by the tests: finding all matches of
a BGP query over an RDF graph is finding all subgraph homomorphisms from the
query graph to the data graph (Definition 3).

The matcher is a classic backtracking search over the query vertices in a
connectivity-preserving order, with candidate filtering (signatures +
per-edge support) done upfront.  Variables on predicates are supported.
Distinct query vertices may map to the same data vertex (homomorphism, not
isomorphism), matching SPARQL semantics.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..planner.optimizer import QueryPlanner
from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Node, PatternTerm, Variable
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding, ResultSet
from ..sparql.query_graph import QueryEdge, QueryGraph, traversal_order
from .candidates import compute_candidates
from .signatures import SignatureIndex


def _candidate_sort_key(node: Node) -> Tuple[str, str]:
    """A total order on data vertices: by term type, then surface syntax.

    Candidate pools are sets, so without an explicit order the backtracking
    search visits data vertices in hash order — correct but irreproducible,
    which makes planner A/B comparisons noisy.  Sorting makes every run of
    the matcher deterministic.
    """
    return (type(node).__name__, node.n3())


class LocalMatcher:
    """Find all matches of BGP queries over a single in-memory RDF graph."""

    def __init__(
        self,
        graph: RDFGraph,
        signature_index: Optional[SignatureIndex] = None,
        planner: Optional[QueryPlanner] = None,
    ) -> None:
        self._graph = graph
        self._signatures = signature_index or SignatureIndex(graph)
        self._planner = planner
        #: Number of candidate assignments attempted by the most recent
        #: ``find_matches``/``evaluate`` call (a deterministic work measure
        #: used by the planner benchmarks).
        self.search_steps = 0

    @property
    def graph(self) -> RDFGraph:
        return self._graph

    @property
    def signatures(self) -> SignatureIndex:
        return self._signatures

    @property
    def planner(self) -> Optional[QueryPlanner]:
        return self._planner

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate a SELECT/ASK query and return its solutions.

        Disconnected BGPs are evaluated one connected component at a time and
        combined with a cross product, mirroring the paper's assumption that
        connected components are considered separately.
        """
        components = query.bgp.connected_components()
        if not components:
            return ResultSet([], query.effective_projection)
        partial: List[List[Dict[PatternTerm, Node]]] = []
        steps = 0
        for component in components:
            graph = QueryGraph(component)
            partial.append(list(self.find_matches(graph)))
            steps += self.search_steps
        self.search_steps = steps
        combined = partial[0]
        for extra in partial[1:]:
            combined = [{**left, **right} for left in combined for right in extra]
        bindings = [self._to_binding(assignment) for assignment in combined]
        results = ResultSet(bindings, query.variables)
        projected = results.project(query.effective_projection, distinct=query.distinct)
        return projected.limit(query.limit)

    def find_matches(
        self,
        query: QueryGraph,
        order: Optional[Sequence[PatternTerm]] = None,
    ) -> Iterator[Dict[PatternTerm, Node]]:
        """Yield complete assignments (query vertex → data vertex) for ``query``.

        The vertex visit order is, in priority: the explicit ``order``
        argument, the attached planner's cost-based order, or the seed's
        static :func:`traversal_order`.  Any permutation of the query
        vertices yields the same matches — the order only changes how much
        of the search space is explored before failures are detected.
        """
        self.search_steps = 0
        candidates = compute_candidates(self._graph, query, self._signatures)
        if any(not candidates[vertex] for vertex in query.vertices):
            return
        if order is not None:
            chosen = list(order)
        elif self._planner is not None:
            chosen = self._planner.order_for(query)
        else:
            chosen = traversal_order(query)
        yield from self._extend({}, chosen, 0, query, candidates)

    def count_matches(self, query: QueryGraph) -> int:
        """Number of complete matches (used by benchmarks)."""
        return sum(1 for _ in self.find_matches(query))

    # ------------------------------------------------------------------
    # Backtracking search
    # ------------------------------------------------------------------
    def _extend(
        self,
        assignment: Dict[PatternTerm, Node],
        order: List[PatternTerm],
        depth: int,
        query: QueryGraph,
        candidates: Dict[PatternTerm, Set[Node]],
    ) -> Iterator[Dict[PatternTerm, Node]]:
        if depth == len(order):
            yield dict(assignment)
            return
        vertex = order[depth]
        for candidate in self._ordered_candidates(vertex, assignment, query, candidates):
            self.search_steps += 1
            if not self._consistent(vertex, candidate, assignment, query):
                continue
            assignment[vertex] = candidate
            yield from self._extend(assignment, order, depth + 1, query, candidates)
            del assignment[vertex]

    def _ordered_candidates(
        self,
        vertex: PatternTerm,
        assignment: Dict[PatternTerm, Node],
        query: QueryGraph,
        candidates: Dict[PatternTerm, Set[Node]],
    ) -> Iterator[Node]:
        """Candidates for ``vertex``, narrowed by already-assigned neighbours.

        When an adjacent query vertex is already assigned, the data graph's
        adjacency restricts the viable candidates to the neighbours of that
        assignment, which is usually a much smaller set than the global
        candidate list.
        """
        pool = candidates[vertex]
        narrowed: Optional[Set[Node]] = None
        for edge in query.edges_of(vertex):
            other = edge.other_endpoint(vertex) if vertex in edge.endpoints else None
            if other is None or other not in assignment or other == vertex:
                continue
            other_value = assignment[other]
            predicate = None if isinstance(edge.predicate, Variable) else edge.predicate
            if edge.subject == vertex:
                reachable = {t.subject for t in self._graph.triples(None, predicate, other_value)}
            else:
                reachable = {t.object for t in self._graph.triples(other_value, predicate, None)}
            narrowed = reachable if narrowed is None else narrowed & reachable
            if not narrowed:
                return iter(())
        if narrowed is None:
            return iter(sorted(pool, key=_candidate_sort_key))
        return iter(sorted(narrowed & pool, key=_candidate_sort_key))

    def _consistent(
        self,
        vertex: PatternTerm,
        candidate: Node,
        assignment: Dict[PatternTerm, Node],
        query: QueryGraph,
    ) -> bool:
        """Check every query edge between ``vertex`` and already-assigned vertices."""
        for edge in query.edges_of(vertex):
            subject_value = candidate if edge.subject == vertex else assignment.get(edge.subject)
            object_value = candidate if edge.object == vertex else assignment.get(edge.object)
            if edge.subject == vertex and edge.object == vertex:
                subject_value = object_value = candidate
            if subject_value is None or object_value is None:
                continue
            if not self._edge_exists(subject_value, edge, object_value):
                return False
        return True

    def _edge_exists(self, subject_value: Node, edge: QueryEdge, object_value: Node) -> bool:
        if isinstance(edge.predicate, Variable):
            return any(True for _ in self._graph.triples(subject_value, None, object_value))
        if not isinstance(edge.predicate, IRI):
            return False
        return any(True for _ in self._graph.triples(subject_value, edge.predicate, object_value))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _to_binding(assignment: Dict[PatternTerm, Node]) -> Binding:
        return Binding({vertex: value for vertex, value in assignment.items() if isinstance(vertex, Variable)})


def evaluate_centralized(
    graph: RDFGraph,
    query: SelectQuery,
    planner: Optional[QueryPlanner] = None,
) -> ResultSet:
    """One-shot convenience wrapper: evaluate ``query`` over ``graph`` centrally."""
    return LocalMatcher(graph, planner=planner).evaluate(query)
