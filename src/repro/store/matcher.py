"""Centralized BGP matcher (subgraph homomorphism search).

This is the "local evaluation inside one site" engine and also the
ground-truth centralized evaluator used by the tests: finding all matches of
a BGP query over an RDF graph is finding all subgraph homomorphisms from the
query graph to the data graph (Definition 3).

The matcher is a classic backtracking search over the query vertices in a
connectivity-preserving order, with candidate filtering (signatures +
per-edge support) done upfront.  Variables on predicates are supported.
Distinct query vertices may map to the same data vertex (homomorphism, not
isomorphism), matching SPARQL semantics.

Since the dictionary-encoding PR the search itself runs entirely on dense
integer ids from :mod:`repro.store.encoding`: candidate pools are id sets
sorted once per query (id order *is* the old ``(type, n3)`` candidate
order, so answers and ``search_steps`` are bit-identical to the object
path), edge checks are O(1) integer set probes against the encoded
``spo``/``pos``/``osp`` indexes, and assignments decode back to
:class:`~repro.rdf.terms.Node` objects only when a complete match is
yielded.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from ..planner.optimizer import QueryPlanner
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, PatternTerm, Variable
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import Binding, ResultSet
from ..sparql.query_graph import QueryGraph, traversal_order
from .candidates import compute_candidate_ids, predicate_code
from .encoding import EncodedGraph, encoded_view
from .signatures import SignatureIndex


class _CompiledVertex:
    """Everything the kernel needs about one query vertex, precompiled to ints.

    Built once per ``find_matches`` call; the backtracking loop then touches
    only integer tuples and id sets.
    """

    __slots__ = ("index", "pool", "sorted_pool", "narrow_edges", "check_edges")

    def __init__(
        self,
        index: int,
        pool: Set[int],
        narrow_edges: List[Tuple[bool, int, int]],
        check_edges: List[Tuple[bool, int, bool, int, int]],
    ) -> None:
        self.index = index
        self.pool = pool
        #: Ids sort exactly like the old ``(type, n3)`` candidate order, so
        #: this sort happens once per query instead of once per search step.
        self.sorted_pool = sorted(pool)
        #: ``(vertex_is_subject, predicate_code, other_vertex_index)`` per
        #: incident non-loop edge, in query-edge order.
        self.narrow_edges = narrow_edges
        #: ``(subject_is_self, subject_index, object_is_self, object_index,
        #: predicate_code)`` per incident edge (loops included).
        self.check_edges = check_edges


class LocalMatcher:
    """Find all matches of BGP queries over a single in-memory RDF graph."""

    def __init__(
        self,
        graph: RDFGraph,
        signature_index: Optional[SignatureIndex] = None,
        planner: Optional[QueryPlanner] = None,
    ) -> None:
        self._graph = graph
        self._signatures = signature_index or SignatureIndex(graph)
        self._planner = planner
        #: Number of candidate assignments attempted by the most recent
        #: ``find_matches``/``evaluate`` call (a deterministic work measure
        #: used by the planner benchmarks).
        self.search_steps = 0

    @property
    def graph(self) -> RDFGraph:
        return self._graph

    @property
    def signatures(self) -> SignatureIndex:
        return self._signatures

    @property
    def planner(self) -> Optional[QueryPlanner]:
        return self._planner

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate a SELECT/ASK query and return its solutions.

        Disconnected BGPs are evaluated one connected component at a time and
        combined with a cross product, mirroring the paper's assumption that
        connected components are considered separately.
        """
        components = query.bgp.connected_components()
        if not components:
            return ResultSet([], query.effective_projection)
        partial: List[List[Dict[PatternTerm, Node]]] = []
        steps = 0
        for component in components:
            graph = QueryGraph(component)
            partial.append(list(self.find_matches(graph)))
            steps += self.search_steps
        self.search_steps = steps
        combined = partial[0]
        for extra in partial[1:]:
            combined = [{**left, **right} for left in combined for right in extra]
        bindings = [self._to_binding(assignment) for assignment in combined]
        results = ResultSet(bindings, query.variables)
        projected = results.project(query.effective_projection, distinct=query.distinct)
        return projected.limit(query.limit)

    def find_matches(
        self,
        query: QueryGraph,
        order: Optional[Sequence[PatternTerm]] = None,
    ) -> Iterator[Dict[PatternTerm, Node]]:
        """Yield complete assignments (query vertex → data vertex) for ``query``.

        The vertex visit order is, in priority: the explicit ``order``
        argument, the attached planner's cost-based order, or the seed's
        static :func:`traversal_order`.  Any permutation of the query
        vertices yields the same matches — the order only changes how much
        of the search space is explored before failures are detected.
        """
        self.search_steps = 0
        encoded = encoded_view(self._graph)
        candidates = compute_candidate_ids(encoded, query, self._signatures)
        if any(not candidates[vertex] for vertex in query.vertices):
            return
        if order is not None:
            chosen = list(order)
        elif self._planner is not None:
            chosen = self._planner.order_for(query)
        else:
            chosen = traversal_order(query)
        compiled = self._compile(query, chosen, candidates, encoded)
        assignment: List[Optional[int]] = [None] * query.num_vertices
        term_of = encoded.dictionary.term_of
        positions = range(len(compiled))
        for _ in self._extend(assignment, compiled, 0, encoded):
            # The inner generator is suspended with every slot assigned, so
            # the complete match can be decoded straight off the assignment.
            yield {
                chosen[position]: term_of(assignment[compiled[position].index])
                for position in positions
            }

    def count_matches(self, query: QueryGraph) -> int:
        """Number of complete matches (used by benchmarks)."""
        return sum(1 for _ in self.find_matches(query))

    # ------------------------------------------------------------------
    # Query compilation (terms → ints, once per find_matches call)
    # ------------------------------------------------------------------
    @staticmethod
    def _compile(
        query: QueryGraph,
        order: Sequence[PatternTerm],
        candidates: Dict[PatternTerm, Set[int]],
        encoded: EncodedGraph,
    ) -> List[_CompiledVertex]:
        compiled: List[_CompiledVertex] = []
        for vertex in order:
            vertex_index = query.vertex_index(vertex)
            narrow_edges: List[Tuple[bool, int, int]] = []
            check_edges: List[Tuple[bool, int, bool, int, int]] = []
            for edge in query.edges_of(vertex):
                code = predicate_code(encoded, edge.predicate)
                subject_index = query.vertex_index(edge.subject)
                object_index = query.vertex_index(edge.object)
                check_edges.append(
                    (
                        edge.subject == vertex,
                        subject_index,
                        edge.object == vertex,
                        object_index,
                        code,
                    )
                )
                other = edge.other_endpoint(vertex)
                if other == vertex:
                    continue  # self-loop: no already-assigned "other" side
                if edge.subject == vertex:
                    narrow_edges.append((True, code, object_index))
                else:
                    narrow_edges.append((False, code, subject_index))
            compiled.append(
                _CompiledVertex(vertex_index, candidates[vertex], narrow_edges, check_edges)
            )
        return compiled

    # ------------------------------------------------------------------
    # Backtracking search (integer kernel)
    # ------------------------------------------------------------------
    def _extend(
        self,
        assignment: List[Optional[int]],
        compiled: List[_CompiledVertex],
        depth: int,
        encoded: EncodedGraph,
    ) -> Iterator[None]:
        if depth == len(compiled):
            yield None  # the caller reads the complete assignment in place
            return
        vertex = compiled[depth]
        vertex_index = vertex.index
        for candidate in self._ordered_candidates(vertex, assignment, encoded):
            self.search_steps += 1
            if not self._consistent(vertex, candidate, assignment, encoded):
                continue
            assignment[vertex_index] = candidate
            yield from self._extend(assignment, compiled, depth + 1, encoded)
            assignment[vertex_index] = None

    @staticmethod
    def _ordered_candidates(
        vertex: _CompiledVertex,
        assignment: List[Optional[int]],
        encoded: EncodedGraph,
    ) -> Sequence[int]:
        """Candidates for ``vertex``, narrowed by already-assigned neighbours.

        When an adjacent query vertex is already assigned, the data graph's
        adjacency restricts the viable candidates to the neighbours of that
        assignment, which is usually a much smaller set than the global
        candidate list.  All probes are integer index lookups; id order is
        the deterministic candidate order, so sorting is a plain int sort.
        """
        narrowed: Optional[Set[int]] = None
        for is_subject, code, other_index in vertex.narrow_edges:
            other_value = assignment[other_index]
            if other_value is None:
                continue
            if is_subject:
                reachable = encoded.subjects_to(code, other_value)
            else:
                reachable = encoded.objects_from(other_value, code)
            narrowed = reachable if narrowed is None else narrowed & reachable
            if not narrowed:
                return ()
        if narrowed is None:
            return vertex.sorted_pool
        return sorted(narrowed & vertex.pool)

    @staticmethod
    def _consistent(
        vertex: _CompiledVertex,
        candidate: int,
        assignment: List[Optional[int]],
        encoded: EncodedGraph,
    ) -> bool:
        """Check every query edge between ``vertex`` and already-assigned vertices."""
        has_edge = encoded.has_edge
        for subject_is_self, subject_index, object_is_self, object_index, code in (
            vertex.check_edges
        ):
            subject_value = candidate if subject_is_self else assignment[subject_index]
            object_value = candidate if object_is_self else assignment[object_index]
            if subject_value is None or object_value is None:
                continue
            if not has_edge(subject_value, code, object_value):
                return False
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _to_binding(assignment: Dict[PatternTerm, Node]) -> Binding:
        return Binding({vertex: value for vertex, value in assignment.items() if isinstance(vertex, Variable)})


def evaluate_centralized(
    graph: RDFGraph,
    query: SelectQuery,
    planner: Optional[QueryPlanner] = None,
) -> ResultSet:
    """One-shot convenience wrapper: evaluate ``query`` over ``graph`` centrally."""
    return LocalMatcher(graph, planner=planner).evaluate(query)
