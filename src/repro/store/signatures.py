"""Vertex signatures for candidate filtering.

gStore encodes the neighbourhood of every data vertex as a fixed-length
bit-signature and filters candidate vertices for each query vertex by
signature containment before running the expensive subgraph matching.  This
module implements the same idea: a vertex's signature hashes its adjacent
(predicate, direction) pairs — and, optionally, adjacent constant neighbour
values — into a bitset, and a query vertex's signature (built only from the
constant information around it) must be a subset of any matching data
vertex's signature.

The index is built over the graph's dictionary-encoded view
(:mod:`repro.store.encoding`): one pass over the integer triples, with the
hash position of every ``(direction, predicate)`` and ``(direction,
predicate, neighbour)`` key computed once and memoized — repeated shapes
(e.g. thousands of ``rdf:type`` edges into the same class) hash once instead
of once per edge.  Signatures are stored per term id, so the candidate
kernel checks containment with one list lookup and one integer AND.

The signature check is a *necessary* condition, never sufficient: the matcher
always re-verifies real edges, so false positives cost time but never
correctness.  False negatives cannot happen because exactly the same hash
positions are set on the query side and the data side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..sparql.query_graph import QueryGraph
from .encoding import EncodedGraph, encoded_view

#: Default signature width in bits.  Wide enough that collisions are rare on
#: the bundled datasets, small enough to stay cheap to build and intersect.
DEFAULT_SIGNATURE_BITS = 256


def _hash_position(key: str, bits: int) -> int:
    """Map ``key`` to a bit position deterministically (process-independent)."""
    # A small FNV-1a so that signatures are stable across runs and platforms
    # (Python's built-in hash() is randomized per process).
    value = 0xCBF29CE484222325
    for char in key.encode("utf-8"):
        value ^= char
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % bits


@dataclass(frozen=True, slots=True)
class VertexSignature:
    """A bitset summarising a vertex's incident edges."""

    bits: int
    width: int = DEFAULT_SIGNATURE_BITS

    def covers(self, other: "VertexSignature") -> bool:
        """True when every bit set in ``other`` is also set in ``self``."""
        return (self.bits & other.bits) == other.bits

    def __or__(self, other: "VertexSignature") -> "VertexSignature":
        return VertexSignature(self.bits | other.bits, self.width)

    def popcount(self) -> int:
        return bin(self.bits).count("1")


class SignatureIndex:
    """Pre-computed signatures for every vertex of a data graph."""

    def __init__(self, graph: RDFGraph, width: int = DEFAULT_SIGNATURE_BITS) -> None:
        self._width = width
        self._graph = graph
        self._rebuild(encoded_view(graph))

    def _signature_masks(self, s: int, p: int, o: int) -> Tuple[int, int]:
        """The ``(subject_bits, object_bits)`` one data edge contributes."""
        dictionary = self._encoded.dictionary
        value = dictionary.term_of(p).value  # data predicates are IRIs
        width = self._width
        subject_bits = (1 << _hash_position(f"out|{value}", width)) | (
            1 << _hash_position(f"out|{value}|{dictionary.n3_of(o)}", width)
        )
        object_bits = (1 << _hash_position(f"in|{value}", width)) | (
            1 << _hash_position(f"in|{value}|{dictionary.n3_of(s)}", width)
        )
        return subject_bits, object_bits

    def _rebuild(self, encoded: EncodedGraph) -> None:
        """One pass over the encoded triples; bits are stored per term id."""
        width = self._width
        dictionary = encoded.dictionary
        bits_by_id: List[int] = [0] * len(dictionary)
        # Per-predicate direction masks and per-(direction, predicate,
        # neighbour) positions, each hashed exactly once.
        predicate_masks: Dict[int, Tuple[int, int, str]] = {}
        pair_positions: Dict[Tuple[bool, int, int], int] = {}
        for s, p, o in encoded.iter_triple_ids():
            cached = predicate_masks.get(p)
            if cached is None:
                value = dictionary.term_of(p).value  # data predicates are IRIs
                cached = (
                    1 << _hash_position(f"out|{value}", width),
                    1 << _hash_position(f"in|{value}", width),
                    value,
                )
                predicate_masks[p] = cached
            out_mask, in_mask, value = cached
            out_pair = pair_positions.get((True, p, o))
            if out_pair is None:
                out_pair = 1 << _hash_position(
                    f"out|{value}|{dictionary.n3_of(o)}", width
                )
                pair_positions[(True, p, o)] = out_pair
            in_pair = pair_positions.get((False, p, s))
            if in_pair is None:
                in_pair = 1 << _hash_position(
                    f"in|{value}|{dictionary.n3_of(s)}", width
                )
                pair_positions[(False, p, s)] = in_pair
            bits_by_id[s] |= out_mask | out_pair
            bits_by_id[o] |= in_mask | in_pair
        self._bits_by_id = bits_by_id
        self._encoded = encoded
        self._applied_version = self._graph.version
        self._matrix = None

    def _current(self) -> EncodedGraph:
        """The graph's current encoded view, resyncing the bits if stale.

        The graph may have been mutated since this index was built.  When
        the mutation window is available from the graph's journal and
        contains only additions, the bits are patched in place (OR-ing new
        edge masks is exact — signature bits are a union over incident
        edges).  Any removal, or a journal gap, forces a full rebuild:
        removals cannot *clear* bits (another edge may have hashed to the
        same position), and serving superset bits would make this replica's
        candidate sets diverge from a freshly built one.
        """
        encoded = encoded_view(self._graph)
        if encoded is not self._encoded:
            self._rebuild(encoded)
            return encoded
        if self._applied_version != self._graph.version:
            ops = self._graph.journal_since(self._applied_version)
            if ops is None or any(op == "-" for op, _ in ops):
                self._rebuild(encoded)
                return encoded
            bits_by_id = self._bits_by_id
            dictionary = encoded.dictionary
            if len(bits_by_id) < len(dictionary):
                bits_by_id.extend([0] * (len(dictionary) - len(bits_by_id)))
            id_of = dictionary.id_of
            for _, triple in ops:
                s = id_of(triple.subject)
                p = id_of(triple.predicate)
                o = id_of(triple.object)
                subject_bits, object_bits = self._signature_masks(s, p, o)
                bits_by_id[s] |= subject_bits
                bits_by_id[o] |= object_bits
            self._applied_version = self._graph.version
            self._matrix = None
        return encoded

    @property
    def width(self) -> int:
        return self._width

    def signature_of(self, vertex: Node) -> VertexSignature:
        """The signature of a data vertex (empty signature if unknown)."""
        vertex_id = self._current().dictionary.get(vertex)
        if vertex_id is None:
            return VertexSignature(0, self._width)
        return VertexSignature(self._bits_by_id[vertex_id], self._width)

    def bits_table(self, encoded: EncodedGraph) -> List[int]:
        """The per-id signature bits, aligned with ``encoded``'s dictionary.

        The kernel-side fast path: callers index the returned list with ids
        from ``encoded`` directly.  Raises ``ValueError`` when ``encoded``
        is not this index's graph's current view (id spaces would differ).
        """
        if encoded is not self._current():
            raise ValueError(
                "signature index belongs to a different graph than the encoded view"
            )
        return self._bits_by_id

    def bits_matrix(self, encoded: EncodedGraph):
        """The signature bits as an ``(n_terms, words)`` uint64 numpy matrix.

        The vectorized kernel's view of :meth:`bits_table`: row ``i`` holds
        term ``i``'s bitset split into little-endian 64-bit words, so
        signature containment over a whole candidate column is one broadcast
        AND-compare instead of per-id Python big-int ops.  Built lazily,
        memoized until the bits change (rebuild or journal patch).  Raises
        ``ValueError`` when numpy is unavailable or ``encoded`` is stale —
        same contract as :meth:`bits_table`.
        """
        if encoded is not self._current():
            raise ValueError(
                "signature index belongs to a different graph than the encoded view"
            )
        matrix = self._matrix
        if matrix is None:
            from .kernel import numpy_or_none

            np = numpy_or_none()
            if np is None:
                raise ValueError("bits_matrix needs numpy; use bits_table instead")
            mask = 0xFFFFFFFFFFFFFFFF
            words = (self._width + 63) // 64
            matrix = np.array(
                [
                    [(bits >> (64 * word)) & mask for word in range(words)]
                    for bits in self._bits_by_id
                ],
                dtype=np.uint64,
            ).reshape(len(self._bits_by_id), words)
            self._matrix = matrix
        return matrix

    def query_signature(
        self,
        query: QueryGraph,
        vertex: PatternTerm,
        skip_edges: Optional[Iterable[int]] = None,
    ) -> VertexSignature:
        """Build the signature a data vertex must cover to match ``vertex``.

        Only constant information contributes: variable predicates and
        variable neighbours add no bits (they could match anything).  Edges
        listed in ``skip_edges`` are ignored — per-site candidate computation
        uses this to relax constraints on crossing edges whose other endpoint
        lives in a different fragment.
        """
        skipped = set(skip_edges or ())
        bits = 0
        for edge in query.edges_of(vertex):
            if edge.index in skipped:
                continue
            predicate = edge.predicate
            if isinstance(predicate, Variable):
                continue
            if edge.subject == vertex:
                bits |= 1 << _hash_position(f"out|{predicate.value}", self._width)
                if not isinstance(edge.object, Variable):
                    bits |= 1 << _hash_position(
                        f"out|{predicate.value}|{edge.object.n3()}", self._width
                    )
            if edge.object == vertex:
                bits |= 1 << _hash_position(f"in|{predicate.value}", self._width)
                if not isinstance(edge.subject, Variable):
                    bits |= 1 << _hash_position(
                        f"in|{predicate.value}|{edge.subject.n3()}", self._width
                    )
        return VertexSignature(bits, self._width)

    def candidates_by_signature(self, query: QueryGraph, vertex: PatternTerm) -> set[Node]:
        """All data vertices whose signature covers the query vertex's signature."""
        encoded = self._current()
        needed = self.query_signature(query, vertex).bits
        if isinstance(vertex, (IRI, Literal)):
            vertex_id = encoded.dictionary.get(vertex)
            known = vertex_id is not None and encoded.is_vertex(vertex_id)
            return {vertex} if known else set()
        bits_by_id = self._bits_by_id
        term_of = encoded.dictionary.term_of
        return {
            term_of(vertex_id)
            for vertex_id in encoded.vertex_ids
            if (bits_by_id[vertex_id] & needed) == needed
        }
