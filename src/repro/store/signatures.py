"""Vertex signatures for candidate filtering.

gStore encodes the neighbourhood of every data vertex as a fixed-length
bit-signature and filters candidate vertices for each query vertex by
signature containment before running the expensive subgraph matching.  This
module implements the same idea: a vertex's signature hashes its adjacent
(predicate, direction) pairs — and, optionally, adjacent constant neighbour
values — into a bitset, and a query vertex's signature (built only from the
constant information around it) must be a subset of any matching data
vertex's signature.

The signature check is a *necessary* condition, never sufficient: the matcher
always re-verifies real edges, so false positives cost time but never
correctness.  False negatives cannot happen because exactly the same hash
positions are set on the query side and the data side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node, PatternTerm, Variable
from ..sparql.query_graph import QueryGraph

#: Default signature width in bits.  Wide enough that collisions are rare on
#: the bundled datasets, small enough to stay cheap to build and intersect.
DEFAULT_SIGNATURE_BITS = 256


def _hash_position(key: str, bits: int) -> int:
    """Map ``key`` to a bit position deterministically (process-independent)."""
    # A small FNV-1a so that signatures are stable across runs and platforms
    # (Python's built-in hash() is randomized per process).
    value = 0xCBF29CE484222325
    for char in key.encode("utf-8"):
        value ^= char
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % bits


@dataclass(frozen=True, slots=True)
class VertexSignature:
    """A bitset summarising a vertex's incident edges."""

    bits: int
    width: int = DEFAULT_SIGNATURE_BITS

    def covers(self, other: "VertexSignature") -> bool:
        """True when every bit set in ``other`` is also set in ``self``."""
        return (self.bits & other.bits) == other.bits

    def __or__(self, other: "VertexSignature") -> "VertexSignature":
        return VertexSignature(self.bits | other.bits, self.width)

    def popcount(self) -> int:
        return bin(self.bits).count("1")


class SignatureIndex:
    """Pre-computed signatures for every vertex of a data graph."""

    def __init__(self, graph: RDFGraph, width: int = DEFAULT_SIGNATURE_BITS) -> None:
        self._width = width
        self._graph = graph
        self._signatures: dict[Node, VertexSignature] = {}
        for vertex in graph.vertices:
            self._signatures[vertex] = self._build_data_signature(vertex)

    @property
    def width(self) -> int:
        return self._width

    def signature_of(self, vertex: Node) -> VertexSignature:
        """The signature of a data vertex (empty signature if unknown)."""
        return self._signatures.get(vertex, VertexSignature(0, self._width))

    def _build_data_signature(self, vertex: Node) -> VertexSignature:
        bits = 0
        for triple in self._graph.out_edges(vertex):
            bits |= 1 << _hash_position(f"out|{triple.predicate.value}", self._width)
            bits |= 1 << _hash_position(
                f"out|{triple.predicate.value}|{triple.object.n3()}", self._width
            )
        for triple in self._graph.in_edges(vertex):
            bits |= 1 << _hash_position(f"in|{triple.predicate.value}", self._width)
            bits |= 1 << _hash_position(
                f"in|{triple.predicate.value}|{triple.subject.n3()}", self._width
            )
        return VertexSignature(bits, self._width)

    def query_signature(
        self,
        query: QueryGraph,
        vertex: PatternTerm,
        skip_edges: Optional[Iterable[int]] = None,
    ) -> VertexSignature:
        """Build the signature a data vertex must cover to match ``vertex``.

        Only constant information contributes: variable predicates and
        variable neighbours add no bits (they could match anything).  Edges
        listed in ``skip_edges`` are ignored — per-site candidate computation
        uses this to relax constraints on crossing edges whose other endpoint
        lives in a different fragment.
        """
        skipped = set(skip_edges or ())
        bits = 0
        for edge in query.edges_of(vertex):
            if edge.index in skipped:
                continue
            predicate = edge.predicate
            if isinstance(predicate, Variable):
                continue
            if edge.subject == vertex:
                bits |= 1 << _hash_position(f"out|{predicate.value}", self._width)
                if not isinstance(edge.object, Variable):
                    bits |= 1 << _hash_position(
                        f"out|{predicate.value}|{edge.object.n3()}", self._width
                    )
            if edge.object == vertex:
                bits |= 1 << _hash_position(f"in|{predicate.value}", self._width)
                if not isinstance(edge.subject, Variable):
                    bits |= 1 << _hash_position(
                        f"in|{predicate.value}|{edge.subject.n3()}", self._width
                    )
        return VertexSignature(bits, self._width)

    def candidates_by_signature(self, query: QueryGraph, vertex: PatternTerm) -> set[Node]:
        """All data vertices whose signature covers the query vertex's signature."""
        needed = self.query_signature(query, vertex)
        if isinstance(vertex, (IRI, Literal)):
            return {vertex} if vertex in self._signatures else set()
        return {
            data_vertex
            for data_vertex, signature in self._signatures.items()
            if signature.covers(needed)
        }
