"""LUBM-like synthetic dataset and the LQ1-LQ7 benchmark queries.

LUBM (the Lehigh University Benchmark) models the university domain:
universities contain departments; departments employ professors and
lecturers; students take courses, have advisors and degrees; faculty publish
papers.  The original generator scales by the number of universities, and the
paper evaluates 100M/500M/1B-triple instances.

This module generates a *scaled-down* dataset with the same schema flavour
and connectivity patterns (department-centric clusters linked across
universities through degrees and co-authorship), which is what the paper's
evaluation shapes depend on.  The seven benchmark queries cover the same
shape classes the paper uses:

* stars — LQ2 (unselective), LQ4 and LQ5 (selective);
* other shapes — LQ1 and LQ7 (unselective, many intermediate results),
  LQ3 (unselective with an empty answer), LQ6 (selective).
"""

from __future__ import annotations

from typing import Dict, List

from ..rdf.graph import RDFGraph
from ..rdf.namespaces import Namespace, NamespaceManager
from ..rdf.terms import IRI
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_query
from .generator_utils import DatasetInfo, GraphBuilder

#: The univ-bench-like ontology namespace used by the generator and queries.
UB = Namespace("http://example.org/univ-bench#")
#: Instance namespace.
UNIV = Namespace("http://example.org/university/")

LUBM_NAMESPACES = NamespaceManager({"ub": UB.base, "u": UNIV.base})

# Classes.
UNIVERSITY = UB.term("University")
DEPARTMENT = UB.term("Department")
FULL_PROFESSOR = UB.term("FullProfessor")
ASSOCIATE_PROFESSOR = UB.term("AssociateProfessor")
LECTURER = UB.term("Lecturer")
GRADUATE_STUDENT = UB.term("GraduateStudent")
UNDERGRADUATE_STUDENT = UB.term("UndergraduateStudent")
COURSE = UB.term("Course")
PUBLICATION = UB.term("Publication")
RESEARCH_GROUP = UB.term("ResearchGroup")

# Properties.
SUB_ORGANIZATION_OF = UB.term("subOrganizationOf")
WORKS_FOR = UB.term("worksFor")
MEMBER_OF = UB.term("memberOf")
TEACHER_OF = UB.term("teacherOf")
TAKES_COURSE = UB.term("takesCourse")
ADVISOR = UB.term("advisor")
PUBLICATION_AUTHOR = UB.term("publicationAuthor")
UNDERGRADUATE_DEGREE_FROM = UB.term("undergraduateDegreeFrom")
DOCTORAL_DEGREE_FROM = UB.term("doctoralDegreeFrom")
HEAD_OF = UB.term("headOf")
NAME = UB.term("name")
EMAIL = UB.term("emailAddress")
TELEPHONE = UB.term("telephone")
RESEARCH_INTEREST = UB.term("researchInterest")

_INTERESTS = [
    "databases",
    "graphs",
    "semantic web",
    "machine learning",
    "distributed systems",
    "information retrieval",
]


def generate(scale: int = 1, seed: int = 7, universities_per_scale: int = 2) -> RDFGraph:
    """Generate a LUBM-like RDF graph.

    Parameters
    ----------
    scale:
        Scale factor; the number of universities is
        ``scale * universities_per_scale``.  The paper's LUBM 100M / 500M /
        1B datasets map onto scales 1 / 5 / 10 in the benchmark harness.
    seed:
        RNG seed; the output is deterministic for a (scale, seed) pair.
    universities_per_scale:
        Universities generated per unit of scale.
    """
    builder = GraphBuilder("LUBM", seed)
    num_universities = max(1, scale * universities_per_scale)
    universities: List[IRI] = []
    all_professors: List[IRI] = []
    all_departments: List[IRI] = []

    for u in range(num_universities):
        university = UNIV.term(f"University{u}")
        universities.append(university)
        builder.add_type(university, UNIVERSITY)
        builder.add_literal(university, NAME, f"University {u}")

        for d in range(3):
            department = UNIV.term(f"University{u}/Department{d}")
            all_departments.append(department)
            builder.add_type(department, DEPARTMENT)
            builder.add(department, SUB_ORGANIZATION_OF, university)
            builder.add_literal(department, NAME, f"Department {d} of University {u}")

            professors: List[IRI] = []
            courses: List[IRI] = []
            for p in range(4):
                professor = UNIV.term(f"University{u}/Department{d}/Professor{p}")
                professors.append(professor)
                all_professors.append(professor)
                rdf_class = FULL_PROFESSOR if p == 0 else ASSOCIATE_PROFESSOR
                builder.add_type(professor, rdf_class)
                builder.add(professor, WORKS_FOR, department)
                builder.add_literal(professor, NAME, f"Professor {p}.{d}.{u}")
                builder.add_literal(professor, EMAIL, f"prof{p}.{d}.{u}@example.org")
                builder.add_literal(professor, TELEPHONE, f"+1-555-{u:02d}{d}{p:02d}")
                builder.add_literal(professor, RESEARCH_INTEREST, builder.choice(_INTERESTS))
                if p == 0:
                    builder.add(professor, HEAD_OF, department)
                # Doctoral degree usually from *another* university: these are
                # the long-range crossing edges the evaluation depends on.
                degree_university = builder.choice(universities) if len(universities) > 1 else university
                builder.add(professor, DOCTORAL_DEGREE_FROM, degree_university)

            for l in range(2):
                lecturer = UNIV.term(f"University{u}/Department{d}/Lecturer{l}")
                builder.add_type(lecturer, LECTURER)
                builder.add(lecturer, WORKS_FOR, department)
                builder.add_literal(lecturer, NAME, f"Lecturer {l}.{d}.{u}")

            for c in range(6):
                course = UNIV.term(f"University{u}/Department{d}/Course{c}")
                courses.append(course)
                builder.add_type(course, COURSE)
                builder.add_literal(course, NAME, f"Course {c}.{d}.{u}")
                builder.add(builder.choice(professors), TEACHER_OF, course)

            for g in range(6):
                student = UNIV.term(f"University{u}/Department{d}/GraduateStudent{g}")
                builder.add_type(student, GRADUATE_STUDENT)
                builder.add(student, MEMBER_OF, department)
                builder.add_literal(student, NAME, f"GradStudent {g}.{d}.{u}")
                builder.add_literal(student, EMAIL, f"grad{g}.{d}.{u}@example.org")
                builder.add(student, ADVISOR, builder.choice(professors))
                builder.add(student, UNDERGRADUATE_DEGREE_FROM, builder.choice(universities))
                for course in builder.sample(courses, 2):
                    builder.add(student, TAKES_COURSE, course)

            for s in range(10):
                student = UNIV.term(f"University{u}/Department{d}/UndergraduateStudent{s}")
                builder.add_type(student, UNDERGRADUATE_STUDENT)
                builder.add(student, MEMBER_OF, department)
                builder.add_literal(student, NAME, f"Student {s}.{d}.{u}")
                for course in builder.sample(courses, 2):
                    builder.add(student, TAKES_COURSE, course)
                if builder.chance(0.3):
                    builder.add(student, ADVISOR, builder.choice(professors))

            for pub in range(5):
                publication = UNIV.term(f"University{u}/Department{d}/Publication{pub}")
                builder.add_type(publication, PUBLICATION)
                builder.add_literal(publication, NAME, f"Publication {pub}.{d}.{u}")
                authors = builder.sample(all_professors, 2) if len(all_professors) > 1 else professors[:1]
                for author in authors:
                    builder.add(publication, PUBLICATION_AUTHOR, author)
    return builder.graph


def dataset_info(graph: RDFGraph, scale: int) -> DatasetInfo:
    """Summary row used by the benchmark harness."""
    stats = graph.stats()
    return DatasetInfo("LUBM", scale, stats["triples"], stats["vertices"], stats["predicates"])


#: Query shape classes as the paper's evaluation uses them.
STAR_QUERIES = ("LQ2", "LQ4", "LQ5")
COMPLEX_QUERIES = ("LQ1", "LQ3", "LQ6", "LQ7")


def queries() -> Dict[str, SelectQuery]:
    """The seven LUBM benchmark queries (LQ1-LQ7)."""
    prefix = f"PREFIX ub: <{UB.base}> PREFIX u: <{UNIV.base}> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    texts = {
        # LQ1 — complex, unselective: the advisor/course triangle generates
        # many intermediate results across fragments.
        "LQ1": """
            SELECT ?student ?professor ?course WHERE {
                ?student ub:advisor ?professor .
                ?professor ub:teacherOf ?course .
                ?student ub:takesCourse ?course .
            }
        """,
        # LQ2 — star, unselective: everything about graduate students.
        "LQ2": """
            SELECT ?student ?department ?university WHERE {
                ?student rdf:type ub:GraduateStudent .
                ?student ub:memberOf ?department .
                ?student ub:undergraduateDegreeFrom ?university .
                ?student ub:emailAddress ?email .
            }
        """,
        # LQ3 — complex, unselective, empty answer: lecturers never author
        # publications in the generator, so the join yields nothing.
        "LQ3": """
            SELECT ?lecturer ?publication ?title WHERE {
                ?lecturer rdf:type ub:Lecturer .
                ?publication ub:publicationAuthor ?lecturer .
                ?publication ub:name ?title .
                ?lecturer ub:worksFor ?department .
            }
        """,
        # LQ4 — star, selective: one department's professors and their details.
        "LQ4": f"""
            SELECT ?professor ?name ?email WHERE {{
                ?professor ub:worksFor <{UNIV.base}University0/Department0> .
                ?professor ub:name ?name .
                ?professor ub:emailAddress ?email .
                ?professor ub:telephone ?phone .
            }}
        """,
        # LQ5 — star, selective: members of one department.
        "LQ5": f"""
            SELECT ?member WHERE {{
                ?member ub:memberOf <{UNIV.base}University0/Department1> .
                ?member rdf:type ub:UndergraduateStudent .
            }}
        """,
        # LQ6 — complex, selective: students of a fixed university who also
        # got their undergraduate degree there.
        "LQ6": f"""
            SELECT ?student ?department WHERE {{
                ?student ub:memberOf ?department .
                ?department ub:subOrganizationOf <{UNIV.base}University0> .
                ?student ub:undergraduateDegreeFrom <{UNIV.base}University0> .
            }}
        """,
        # LQ7 — complex, unselective, the largest join in the workload.
        "LQ7": """
            SELECT ?professor ?student ?course ?department WHERE {
                ?professor ub:teacherOf ?course .
                ?student ub:takesCourse ?course .
                ?student ub:advisor ?professor .
                ?professor ub:worksFor ?department .
                ?student ub:memberOf ?department .
            }
        """,
    }
    return {name: parse_query(prefix + text) for name, text in texts.items()}
