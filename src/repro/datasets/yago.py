"""YAGO2-like synthetic dataset and the YQ1-YQ4 benchmark queries.

YAGO2 is a real-world knowledge base extracted from Wikipedia (people,
places, organizations, creative works and the relations between them).  This
generator produces a scaled-down graph with the same relational flavour:
people born in and living in cities, cities located in countries, actors in
films, scientists winning prizes and graduating from universities, and
marriages between people.  Literal labels are attached to most entities.

The four benchmark queries mirror the shape/selectivity mix of the paper's
YAGO2 workload:

* YQ1 — selective complex query (anchored at one prize),
* YQ2 — selective complex query with an empty answer,
* YQ3 — unselective complex query with a very large number of results (the
  dominant cost in the paper's Table II),
* YQ4 — selective medium query.
"""

from __future__ import annotations

from typing import Dict, List

from ..rdf.graph import RDFGraph
from ..rdf.namespaces import Namespace, NamespaceManager
from ..rdf.terms import IRI
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_query
from .generator_utils import DatasetInfo, GraphBuilder

YAGO = Namespace("http://example.org/yago/")
YAGO_ONT = Namespace("http://example.org/yago-ontology#")

YAGO_NAMESPACES = NamespaceManager({"y": YAGO.base, "yo": YAGO_ONT.base})

# Classes.
PERSON = YAGO_ONT.term("Person")
ACTOR = YAGO_ONT.term("Actor")
SCIENTIST = YAGO_ONT.term("Scientist")
CITY = YAGO_ONT.term("City")
COUNTRY = YAGO_ONT.term("Country")
MOVIE = YAGO_ONT.term("Movie")
PRIZE = YAGO_ONT.term("Prize")
UNIVERSITY = YAGO_ONT.term("University")

# Properties.
WAS_BORN_IN = YAGO_ONT.term("wasBornIn")
LIVES_IN = YAGO_ONT.term("livesIn")
IS_LOCATED_IN = YAGO_ONT.term("isLocatedIn")
ACTED_IN = YAGO_ONT.term("actedIn")
DIRECTED = YAGO_ONT.term("directed")
HAS_WON_PRIZE = YAGO_ONT.term("hasWonPrize")
IS_MARRIED_TO = YAGO_ONT.term("isMarriedTo")
GRADUATED_FROM = YAGO_ONT.term("graduatedFrom")
HAS_CAPITAL = YAGO_ONT.term("hasCapital")
LABEL = YAGO_ONT.term("label")
INFLUENCES = YAGO_ONT.term("influences")


def generate(scale: int = 1, seed: int = 11) -> RDFGraph:
    """Generate a YAGO2-like RDF graph (deterministic per ``(scale, seed)``)."""
    builder = GraphBuilder("YAGO2", seed)
    num_countries = max(2, 2 * scale)
    cities_per_country = 4
    people_per_city = 12
    movies = max(6, 6 * scale)
    prizes = 4
    universities = max(3, 3 * scale)

    countries: List[IRI] = []
    cities: List[IRI] = []
    for c in range(num_countries):
        country = YAGO.term(f"Country{c}")
        countries.append(country)
        builder.add_type(country, COUNTRY)
        builder.add_literal(country, LABEL, f"Country {c}", language="en")
        for k in range(cities_per_country):
            city = YAGO.term(f"City{c}_{k}")
            cities.append(city)
            builder.add_type(city, CITY)
            builder.add(city, IS_LOCATED_IN, country)
            builder.add_literal(city, LABEL, f"City {c}.{k}", language="en")
            if k == 0:
                builder.add(country, HAS_CAPITAL, city)

    prize_entities = []
    for p in range(prizes):
        prize = YAGO.term(f"Prize{p}")
        prize_entities.append(prize)
        builder.add_type(prize, PRIZE)
        builder.add_literal(prize, LABEL, f"Prize {p}", language="en")

    university_entities = []
    for u in range(universities):
        university = YAGO.term(f"University{u}")
        university_entities.append(university)
        builder.add_type(university, UNIVERSITY)
        builder.add(university, IS_LOCATED_IN, builder.choice(cities))
        builder.add_literal(university, LABEL, f"University {u}", language="en")

    movie_entities = []
    for m in range(movies):
        movie = YAGO.term(f"Movie{m}")
        movie_entities.append(movie)
        builder.add_type(movie, MOVIE)
        builder.add_literal(movie, LABEL, f"Movie {m}", language="en")

    people: List[IRI] = []
    for index, city in enumerate(cities):
        for p in range(people_per_city):
            person = YAGO.term(f"Person{index}_{p}")
            people.append(person)
            builder.add_type(person, PERSON)
            builder.add_literal(person, LABEL, f"Person {index}.{p}", language="en")
            builder.add(person, WAS_BORN_IN, city)
            builder.add(person, LIVES_IN, builder.choice(cities))
            if p % 3 == 0:
                builder.add_type(person, ACTOR)
                for movie in builder.sample(movie_entities, 2):
                    builder.add(person, ACTED_IN, movie)
            if p % 4 == 0:
                builder.add_type(person, SCIENTIST)
                builder.add(person, GRADUATED_FROM, builder.choice(university_entities))
                if builder.chance(0.5):
                    builder.add(person, HAS_WON_PRIZE, builder.choice(prize_entities))
            if p % 5 == 0 and people:
                builder.add(person, IS_MARRIED_TO, builder.choice(people))
            if builder.chance(0.2) and people:
                builder.add(person, INFLUENCES, builder.choice(people))
    # A handful of directors so YQ2 has patterns that parse but never join.
    for m, movie in enumerate(movie_entities):
        if m % 2 == 0:
            builder.add(builder.choice(people), DIRECTED, movie)
    return builder.graph


def dataset_info(graph: RDFGraph, scale: int) -> DatasetInfo:
    stats = graph.stats()
    return DatasetInfo("YAGO2", scale, stats["triples"], stats["vertices"], stats["predicates"])


STAR_QUERIES: tuple = ()
COMPLEX_QUERIES = ("YQ1", "YQ2", "YQ3", "YQ4")


def queries() -> Dict[str, SelectQuery]:
    """The four YAGO2 benchmark queries (YQ1-YQ4)."""
    prefix = (
        f"PREFIX y: <{YAGO.base}> PREFIX yo: <{YAGO_ONT.base}> "
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    )
    texts = {
        # YQ1 — selective complex: winners of Prize0, where they graduated
        # and where that university is located.
        "YQ1": """
            SELECT ?scientist ?university ?city WHERE {
                ?scientist yo:hasWonPrize y:Prize0 .
                ?scientist yo:graduatedFrom ?university .
                ?university yo:isLocatedIn ?city .
            }
        """,
        # YQ2 — selective complex, empty answer: prizes are never located
        # anywhere, so the final pattern can never join.
        "YQ2": """
            SELECT ?scientist ?prize WHERE {
                ?scientist yo:hasWonPrize ?prize .
                ?prize yo:isLocatedIn y:Country0 .
                ?scientist yo:wasBornIn ?city .
            }
        """,
        # YQ3 — unselective complex: the born-in / lives-in / located-in
        # join touches every person and produces the largest result set.
        "YQ3": """
            SELECT ?person ?bornCity ?homeCity ?country WHERE {
                ?person yo:wasBornIn ?bornCity .
                ?person yo:livesIn ?homeCity .
                ?bornCity yo:isLocatedIn ?country .
                ?homeCity yo:isLocatedIn ?country .
            }
        """,
        # YQ4 — selective medium: actors born in the capital of Country0.
        "YQ4": """
            SELECT ?actor ?movie ?city WHERE {
                y:Country0 yo:hasCapital ?city .
                ?actor yo:wasBornIn ?city .
                ?actor yo:actedIn ?movie .
            }
        """,
    }
    return {name: parse_query(prefix + text) for name, text in texts.items()}
