"""Workload generators and benchmark queries (LUBM-, YAGO2- and BTC-like)."""

from .generator_utils import DatasetInfo
from .paper_example import (
    EXAMPLE_NAMESPACES,
    build_example_graph,
    build_example_partitioning,
    example_query,
)
from .random_data import random_assignment, random_connected_query, random_graph
from .registry import DATASETS, DatasetSpec, LUBM_SCALES, all_benchmark_queries, get_dataset, query_shape

__all__ = [
    "DATASETS",
    "DatasetInfo",
    "DatasetSpec",
    "EXAMPLE_NAMESPACES",
    "LUBM_SCALES",
    "all_benchmark_queries",
    "build_example_graph",
    "build_example_partitioning",
    "example_query",
    "get_dataset",
    "query_shape",
    "random_assignment",
    "random_connected_query",
    "random_graph",
]
