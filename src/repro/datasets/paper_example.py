"""The paper's running example (Fig. 1 data graph, Fig. 2 query, Fig. 3 LPMs).

The data graph describes a few philosophers, their main interests and a
birth place, spread over three fragments in the paper's Fig. 1.  The module
builds the graph, the example query ("people influencing Crispin Wright and
their interests"), and the exact three-fragment assignment of Fig. 1 so the
unit tests can check the paper's worked examples (local partial matches, LEC
features, LEC feature groups) verbatim.
"""

from __future__ import annotations

from typing import Dict

from ..partition.fragment import PartitionedGraph, build_partitioned_graph
from ..rdf.graph import RDFGraph
from ..rdf.namespaces import Namespace, NamespaceManager
from ..rdf.terms import IRI, Literal, Node
from ..rdf.triples import Triple
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_query

#: Namespace of every resource in the running example.
EX = Namespace("http://example.org/")

EXAMPLE_NAMESPACES = NamespaceManager({"ex": EX.base})

# Vertices of Fig. 1, keyed by the numeric ids the paper prints next to them.
VERTEX: Dict[str, Node] = {
    "001": EX.term("s1_Phi1"),
    "002": Literal("1942-12-21"),
    "003": Literal("Crispin Wright", language="en"),
    "004": Literal("Philosophy of language", language="en"),
    "005": EX.term("s1_Int1"),
    "006": EX.term("s2_Phi2"),
    "007": Literal("Michael Dummett"),
    "008": EX.term("s2_Int2"),
    "009": Literal("Metaphysics", language="en"),
    "010": EX.term("s2_Int3"),
    "011": Literal("Philosophy of logic", language="en"),
    "012": EX.term("s3_Phi3"),
    "013": EX.term("s3_Int4"),
    "014": EX.term("s2_Phi4"),
    "015": Literal("1889-04-26"),
    "016": Literal("Ludwig Wittgenstein", language="en"),
    "017": Literal("Logic", language="en"),
    "018": Literal("Rudolf Carnap", language="en"),
    "019": EX.term("s3_Pla1"),
    "020": Literal("Ronsdorf", language="en"),
}

#: Properties used by the example.
INFLUENCED_BY = EX.term("influencedBy")
MAIN_INTEREST = EX.term("mainInterest")
LABEL = EX.term("label")
NAME = EX.term("name")
BIRTH_DATE = EX.term("birthDate")
BIRTH_PLACE = EX.term("birthPlace")

#: Edges of Fig. 1 as (subject id, property, object id) triples.
_EDGES = [
    ("001", BIRTH_DATE, "002"),
    ("001", NAME, "003"),
    ("001", INFLUENCED_BY, "006"),
    ("001", INFLUENCED_BY, "012"),
    ("005", LABEL, "004"),
    ("006", MAIN_INTEREST, "005"),
    ("006", NAME, "007"),
    ("006", MAIN_INTEREST, "008"),
    ("006", MAIN_INTEREST, "010"),
    ("008", LABEL, "009"),
    ("010", LABEL, "011"),
    ("012", MAIN_INTEREST, "013"),
    ("012", NAME, "016"),
    ("012", BIRTH_DATE, "015"),
    ("013", LABEL, "017"),
    ("014", MAIN_INTEREST, "013"),
    ("014", NAME, "018"),
    ("014", BIRTH_PLACE, "019"),
    ("019", LABEL, "020"),
]

#: The fragment each vertex belongs to in Fig. 1 (fragment ids 0, 1, 2 for F1, F2, F3).
FIGURE1_ASSIGNMENT: Dict[str, int] = {
    "001": 0,
    "002": 0,
    "003": 0,
    "004": 0,
    "005": 0,
    "006": 1,
    "007": 1,
    "008": 1,
    "009": 1,
    "010": 1,
    "011": 1,
    "014": 1,
    "018": 1,
    "012": 2,
    "013": 2,
    "015": 2,
    "016": 2,
    "017": 2,
    "019": 2,
    "020": 2,
}


def build_example_graph() -> RDFGraph:
    """The full RDF graph of Fig. 1."""
    graph = RDFGraph(name="paper-example")
    for subject_id, prop, object_id in _EDGES:
        graph.add(Triple(VERTEX[subject_id], prop, VERTEX[object_id]))
    return graph


def build_example_partitioning() -> PartitionedGraph:
    """The exact three-fragment partitioning shown in Fig. 1."""
    graph = build_example_graph()
    assignment = {VERTEX[key]: fragment for key, fragment in FIGURE1_ASSIGNMENT.items()}
    return build_partitioned_graph(graph, assignment, num_fragments=3, strategy="figure1")


def example_query() -> SelectQuery:
    """The Fig. 2 query: people influencing Crispin Wright and their interests.

    Variable/vertex order matches the paper's serialization vectors:
    v1 = ?p2, v2 = ?t, v3 = ?p1, v4 = ?l, v5 = "Crispin Wright"@en.
    """
    text = """
        PREFIX ex: <http://example.org/>
        SELECT ?p2 ?l WHERE {
            ?p2 ex:mainInterest ?t .
            ?p1 ex:influencedBy ?p2 .
            ?t ex:label ?l .
            ?p1 ex:name "Crispin Wright"@en .
        }
    """
    return parse_query(text)


def expected_answer_count() -> int:
    """Number of solutions of the example query over the full graph.

    Two philosophers influence Crispin Wright (s2:Phi2 and s3:Phi3);
    s2:Phi2 has three labelled interests and s3:Phi3 has one, so the query
    has four solutions in total.
    """
    return 4
