"""Shared helpers for the synthetic dataset generators.

All generators are deterministic for a given ``(scale, seed)`` pair so that
tests and benchmarks are reproducible, and they all report the same summary
statistics so the benchmark harness can print dataset tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, TypeVar

from ..rdf.graph import RDFGraph
from ..rdf.namespaces import RDF_TYPE
from ..rdf.terms import IRI, Literal, Node
from ..rdf.triples import Triple

T = TypeVar("T")


@dataclass(frozen=True)
class DatasetInfo:
    """Summary of one generated dataset instance."""

    name: str
    scale: int
    triples: int
    vertices: int
    predicates: int

    def as_row(self) -> Dict[str, object]:
        return {
            "dataset": self.name,
            "scale": self.scale,
            "triples": self.triples,
            "vertices": self.vertices,
            "predicates": self.predicates,
        }


class GraphBuilder:
    """A small convenience wrapper used by every generator."""

    def __init__(self, name: str, seed: int) -> None:
        self.graph = RDFGraph(name=name)
        self.rng = random.Random(seed)

    def add(self, subject: Node, predicate: IRI, obj: Node) -> None:
        self.graph.add(Triple(subject, predicate, obj))

    def add_type(self, subject: Node, rdf_class: IRI) -> None:
        self.graph.add(Triple(subject, RDF_TYPE, rdf_class))

    def add_literal(self, subject: Node, predicate: IRI, text: str, language: str | None = None) -> None:
        self.graph.add(Triple(subject, predicate, Literal(text, language=language)))

    def choice(self, items: Sequence[T]) -> T:
        return items[self.rng.randrange(len(items))]

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        count = min(count, len(items))
        return self.rng.sample(list(items), count)

    def chance(self, probability: float) -> bool:
        return self.rng.random() < probability

    def info(self, name: str, scale: int) -> DatasetInfo:
        stats = self.graph.stats()
        return DatasetInfo(
            name=name,
            scale=scale,
            triples=stats["triples"],
            vertices=stats["vertices"],
            predicates=stats["predicates"],
        )
