"""BTC-like synthetic dataset and the BQ1-BQ7 benchmark queries.

The Billion Triple Challenge (BTC) datasets are heterogeneous crawls of the
Semantic Web: FOAF social data, DBpedia-style encyclopaedic facts, GeoNames
places and bibliographic records, all mixed together with many different
vocabularies.  That heterogeneity — rather than a single clean schema — is
what characterises the workload, and it is what this generator reproduces at
a small scale: several loosely connected "data sources" whose entities
reference each other across vocabulary boundaries.

The seven benchmark queries keep the paper's shape mix: BQ1-BQ3 are
selective star queries, BQ4-BQ5 selective non-star queries with small
answers, and BQ6-BQ7 selective non-star queries with empty answers.
"""

from __future__ import annotations

from typing import Dict, List

from ..rdf.graph import RDFGraph
from ..rdf.namespaces import Namespace, NamespaceManager
from ..rdf.terms import IRI
from ..sparql.algebra import SelectQuery
from ..sparql.parser import parse_query
from .generator_utils import DatasetInfo, GraphBuilder

FOAF = Namespace("http://example.org/foaf/")
DBP = Namespace("http://example.org/dbpedia/")
DBP_ONT = Namespace("http://example.org/dbpedia-ontology#")
GEO = Namespace("http://example.org/geonames/")
DC = Namespace("http://example.org/dc/")
SWRC = Namespace("http://example.org/swrc#")

BTC_NAMESPACES = NamespaceManager(
    {
        "foaf": FOAF.base,
        "dbp": DBP.base,
        "dbo": DBP_ONT.base,
        "geo": GEO.base,
        "dc": DC.base,
        "swrc": SWRC.base,
    }
)

# FOAF vocabulary.
FOAF_PERSON = FOAF.term("Person")
FOAF_KNOWS = FOAF.term("knows")
FOAF_NAME = FOAF.term("name")
FOAF_HOMEPAGE = FOAF.term("homepage")
FOAF_BASED_NEAR = FOAF.term("based_near")

# DBpedia-like vocabulary.
DBO_CITY = DBP_ONT.term("City")
DBO_COMPANY = DBP_ONT.term("Company")
DBO_LOCATED_IN = DBP_ONT.term("locatedIn")
DBO_FOUNDED_BY = DBP_ONT.term("foundedBy")
DBO_EMPLOYER = DBP_ONT.term("employer")
DBO_LABEL = DBP_ONT.term("label")

# GeoNames-like vocabulary.
GEO_FEATURE = GEO.term("Feature")
GEO_PARENT_FEATURE = GEO.term("parentFeature")
GEO_NAME = GEO.term("name")

# Bibliographic vocabulary.
SWRC_ARTICLE = SWRC.term("Article")
DC_CREATOR = DC.term("creator")
DC_TITLE = DC.term("title")
SWRC_JOURNAL = SWRC.term("journal")


def generate(scale: int = 1, seed: int = 23) -> RDFGraph:
    """Generate a BTC-like heterogeneous RDF graph."""
    builder = GraphBuilder("BTC", seed)
    num_regions = max(2, 2 * scale)
    cities_per_region = 3
    people_per_city = 10
    companies = max(4, 4 * scale)
    articles_per_region = 15

    regions: List[IRI] = []
    cities: List[IRI] = []
    for r in range(num_regions):
        region = GEO.term(f"Region{r}")
        regions.append(region)
        builder.add_type(region, GEO_FEATURE)
        builder.add_literal(region, GEO_NAME, f"Region {r}")
        for c in range(cities_per_region):
            city = GEO.term(f"City{r}_{c}")
            cities.append(city)
            builder.add_type(city, GEO_FEATURE)
            builder.add_type(city, DBO_CITY)
            builder.add(city, GEO_PARENT_FEATURE, region)
            builder.add_literal(city, GEO_NAME, f"City {r}.{c}")

    company_entities: List[IRI] = []
    for k in range(companies):
        company = DBP.term(f"Company{k}")
        company_entities.append(company)
        builder.add_type(company, DBO_COMPANY)
        builder.add(company, DBO_LOCATED_IN, builder.choice(cities))
        builder.add_literal(company, DBO_LABEL, f"Company {k}", language="en")

    people: List[IRI] = []
    for index, city in enumerate(cities):
        for p in range(people_per_city):
            person = FOAF.term(f"Person{index}_{p}")
            builder.add_type(person, FOAF_PERSON)
            builder.add_literal(person, FOAF_NAME, f"Person {index}.{p}")
            builder.add(person, FOAF_BASED_NEAR, city)
            if builder.chance(0.6):
                builder.add_literal(person, FOAF_HOMEPAGE, f"http://people.example.org/{index}/{p}")
            if people:
                for friend in builder.sample(people, 2):
                    builder.add(person, FOAF_KNOWS, friend)
            if builder.chance(0.4):
                builder.add(person, DBO_EMPLOYER, builder.choice(company_entities))
            people.append(person)

    for k, company in enumerate(company_entities):
        builder.add(company, DBO_FOUNDED_BY, builder.choice(people))

    for r in range(num_regions):
        for a in range(articles_per_region):
            article = SWRC.term(f"Article{r}_{a}")
            builder.add_type(article, SWRC_ARTICLE)
            builder.add_literal(article, DC_TITLE, f"Article {r}.{a}")
            builder.add_literal(article, SWRC_JOURNAL, f"Journal {a % 5}")
            for author in builder.sample(people, 2):
                builder.add(article, DC_CREATOR, author)
    return builder.graph


def dataset_info(graph: RDFGraph, scale: int) -> DatasetInfo:
    stats = graph.stats()
    return DatasetInfo("BTC", scale, stats["triples"], stats["vertices"], stats["predicates"])


STAR_QUERIES = ("BQ1", "BQ2", "BQ3")
COMPLEX_QUERIES = ("BQ4", "BQ5", "BQ6", "BQ7")


def queries() -> Dict[str, SelectQuery]:
    """The seven BTC benchmark queries (BQ1-BQ7)."""
    prefix = (
        f"PREFIX foaf: <{FOAF.base}> PREFIX dbp: <{DBP.base}> PREFIX dbo: <{DBP_ONT.base}> "
        f"PREFIX geo: <{GEO.base}> PREFIX dc: <{DC.base}> PREFIX swrc: <{SWRC.base}> "
        "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "
    )
    texts = {
        # BQ1 — selective star: details of one specific person.
        "BQ1": """
            SELECT ?name ?city WHERE {
                foaf:Person0_0 foaf:name ?name .
                foaf:Person0_0 foaf:based_near ?city .
                foaf:Person0_0 rdf:type foaf:Person .
            }
        """,
        # BQ2 — selective star: one company's profile.
        "BQ2": """
            SELECT ?label ?city ?founder WHERE {
                dbp:Company0 dbo:label ?label .
                dbp:Company0 dbo:locatedIn ?city .
                dbp:Company0 dbo:foundedBy ?founder .
            }
        """,
        # BQ3 — selective star with an empty answer: Region0 is a region,
        # not a city, so the type pattern never matches.
        "BQ3": """
            SELECT ?name WHERE {
                geo:Region0 geo:name ?name .
                geo:Region0 rdf:type dbo:City .
                geo:Region0 geo:parentFeature ?parent .
            }
        """,
        # BQ4 — selective complex: employees of companies in one region and
        # the articles they wrote.
        "BQ4": """
            SELECT ?person ?company ?article WHERE {
                ?person dbo:employer ?company .
                ?company dbo:locatedIn ?city .
                ?city geo:parentFeature geo:Region0 .
                ?article dc:creator ?person .
            }
        """,
        # BQ5 — selective complex: founders based near the city their company
        # is located in.
        "BQ5": """
            SELECT ?company ?founder ?city WHERE {
                ?company dbo:foundedBy ?founder .
                ?founder foaf:based_near ?city .
                ?company dbo:locatedIn ?city .
            }
        """,
        # BQ6 — selective complex, empty: articles are never created by
        # companies.
        "BQ6": """
            SELECT ?article ?company WHERE {
                ?article dc:creator ?company .
                ?article dc:title ?title .
                ?company rdf:type dbo:Company .
                ?company dbo:locatedIn ?city .
            }
        """,
        # BQ7 — selective complex, empty: homepages are literals, so they can
        # never be the subject of foaf:knows.
        "BQ7": """
            SELECT ?person ?friend WHERE {
                ?person foaf:homepage ?page .
                ?page foaf:knows ?friend .
                ?friend foaf:based_near ?city .
            }
        """,
    }
    return {name: parse_query(prefix + text) for name, text in texts.items()}
