"""Dataset and query registry used by the benchmark harness and examples.

The paper's evaluation runs a fixed workload: LUBM at three scales with
queries LQ1-LQ7, YAGO2 with YQ1-YQ4, and BTC with BQ1-BQ7.  This module maps
dataset names to their generators, query sets and shape metadata so the
benchmark code can iterate over "every table row" generically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..rdf.graph import RDFGraph
from ..sparql.algebra import SelectQuery
from ..sparql.query_graph import QueryGraph
from . import btc, lubm, yago


@dataclass(frozen=True)
class DatasetSpec:
    """Everything the harness needs to know about one benchmark dataset."""

    name: str
    generate: Callable[..., RDFGraph]
    queries: Callable[[], Dict[str, SelectQuery]]
    star_queries: Tuple[str, ...]
    complex_queries: Tuple[str, ...]
    #: Scale used by the per-stage tables and the comparison figure.
    default_scale: int = 1

    def query_names(self) -> Tuple[str, ...]:
        return tuple(self.queries().keys())


DATASETS: Dict[str, DatasetSpec] = {
    "LUBM": DatasetSpec(
        name="LUBM",
        generate=lubm.generate,
        queries=lubm.queries,
        star_queries=lubm.STAR_QUERIES,
        complex_queries=lubm.COMPLEX_QUERIES,
        default_scale=1,
    ),
    "YAGO2": DatasetSpec(
        name="YAGO2",
        generate=yago.generate,
        queries=yago.queries,
        star_queries=yago.STAR_QUERIES,
        complex_queries=yago.COMPLEX_QUERIES,
        default_scale=1,
    ),
    "BTC": DatasetSpec(
        name="BTC",
        generate=btc.generate,
        queries=btc.queries,
        star_queries=btc.STAR_QUERIES,
        complex_queries=btc.COMPLEX_QUERIES,
        default_scale=1,
    ),
}

#: The LUBM scales standing in for the paper's 100M / 500M / 1B instances.
LUBM_SCALES: Dict[str, int] = {"100M": 1, "500M": 3, "1B": 6}


def get_dataset(name: str) -> DatasetSpec:
    """Look a dataset spec up by name (``LUBM``, ``YAGO2`` or ``BTC``)."""
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    return DATASETS[name]


def query_shape(query: SelectQuery) -> str:
    """Convenience wrapper: the shape class of a query (star/path/tree/cycle/complex)."""
    return QueryGraph(query.bgp).classify_shape()


def all_benchmark_queries() -> Dict[str, Dict[str, SelectQuery]]:
    """Every benchmark query of every dataset, keyed by dataset then query name."""
    return {name: spec.queries() for name, spec in DATASETS.items()}
