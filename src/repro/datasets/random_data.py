"""Random RDF graphs and BGP queries for property-based testing.

The hypothesis test-suite checks the central invariant of the whole system —
*the distributed engines return exactly the centralized answer, for every
partitioning* — on randomly generated graphs and queries.  This module keeps
those generators deterministic (driven by an externally supplied seed) and
biased toward interesting cases: connected queries with a mix of variables
and constants, drawn from patterns that actually occur in the graph so
results are frequently non-empty.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.namespaces import Namespace
from ..rdf.terms import IRI, Node, PatternTerm, Variable
from ..rdf.triples import Triple, TriplePattern
from ..sparql.algebra import BasicGraphPattern, SelectQuery

RAND = Namespace("http://example.org/random/")


def random_graph(
    seed: int,
    num_vertices: int = 30,
    num_edges: int = 60,
    num_predicates: int = 5,
) -> RDFGraph:
    """A random directed labelled multigraph rendered as an RDF graph."""
    rng = random.Random(seed)
    vertices = [RAND.term(f"v{i}") for i in range(max(2, num_vertices))]
    predicates = [RAND.term(f"p{i}") for i in range(max(1, num_predicates))]
    graph = RDFGraph(name=f"random-{seed}")
    # A random spanning chain keeps the graph mostly connected, which makes
    # multi-edge queries more likely to have answers.
    for i in range(1, len(vertices)):
        source = vertices[rng.randrange(i)]
        graph.add(Triple(source, rng.choice(predicates), vertices[i]))
    # Only V*(V-1)*P distinct non-loop triples exist; without this clamp a
    # small-vertex / large-edge request would reject-sample forever.
    target = min(num_edges, len(vertices) * (len(vertices) - 1) * len(predicates))
    attempts_left = 200 * max(target, 1)
    while len(graph) < target and attempts_left > 0:
        attempts_left -= 1
        subject = rng.choice(vertices)
        obj = rng.choice(vertices)
        if subject == obj:
            continue
        graph.add(Triple(subject, rng.choice(predicates), obj))
    return graph


def random_connected_query(
    graph: RDFGraph,
    seed: int,
    num_edges: int = 3,
    constant_probability: float = 0.3,
) -> Optional[SelectQuery]:
    """A connected BGP query sampled from the graph's own structure.

    A random connected set of data edges is picked by a walk, then each data
    vertex is replaced by a fresh variable (or kept as a constant with
    probability ``constant_probability``).  The resulting query has at least
    one match (the sampled subgraph itself).  Returns ``None`` when the graph
    is too small to sample from.
    """
    rng = random.Random(seed)
    triples = list(graph)
    if not triples:
        return None
    start = triples[rng.randrange(len(triples))]
    chosen: List[Triple] = [start]
    touched = {start.subject, start.object}
    for _ in range(num_edges - 1):
        adjacent = [
            triple
            for vertex in touched
            for triple in graph.edges_of(vertex)
            if triple not in chosen
        ]
        if not adjacent:
            break
        nxt = adjacent[rng.randrange(len(adjacent))]
        chosen.append(nxt)
        touched.update((nxt.subject, nxt.object))

    vertex_terms: Dict[Node, PatternTerm] = {}
    counter = 0
    for vertex in sorted(touched, key=lambda v: v.n3()):
        if rng.random() < constant_probability:
            vertex_terms[vertex] = vertex
        else:
            vertex_terms[vertex] = Variable(f"x{counter}")
            counter += 1
    if not any(isinstance(term, Variable) for term in vertex_terms.values()):
        # Ensure at least one variable so the query projects something.
        first = sorted(touched, key=lambda v: v.n3())[0]
        vertex_terms[first] = Variable("x0")

    patterns = [
        TriplePattern(vertex_terms[triple.subject], triple.predicate, vertex_terms[triple.object])
        for triple in chosen
    ]
    return SelectQuery(bgp=BasicGraphPattern(patterns), projection=())


def random_assignment(graph: RDFGraph, seed: int, num_fragments: int) -> Dict[Node, int]:
    """A uniformly random vertex → fragment assignment (for partition tests)."""
    rng = random.Random(seed)
    return {vertex: rng.randrange(num_fragments) for vertex in graph.vertices}
