"""A site of the simulated cluster.

Each site hosts exactly one fragment (the paper's simplifying assumption) and
runs a local :class:`~repro.store.TripleStore` over it.  Sites expose the
local operations the engines need — candidate computation, local BGP
evaluation — but they never look at other fragments: any cross-site
information must arrive through the message bus.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..exec.tasks import register_site_task
from ..partition.fragment import Fragment
from ..planner.optimizer import QueryPlanner
from ..planner.statistics import GraphStatistics
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node, PatternTerm
from ..sparql.algebra import SelectQuery
from ..sparql.bindings import ResultSet
from ..sparql.query_graph import QueryGraph
from ..store.triple_store import TripleStore


class Site:
    """One machine of the simulated cluster, hosting one fragment."""

    def __init__(self, site_id: int, fragment: Fragment) -> None:
        self.site_id = site_id
        self.fragment = fragment
        self.store = TripleStore(fragment.to_graph(), name=fragment.name)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return f"S{self.site_id}"

    @property
    def graph(self) -> RDFGraph:
        return self.store.graph

    @property
    def internal_vertices(self) -> Set[Node]:
        return self.fragment.internal_vertices

    @property
    def extended_vertices(self) -> Set[Node]:
        return self.fragment.extended_vertices

    def is_internal(self, vertex: Node) -> bool:
        return self.fragment.is_internal(vertex)

    # ------------------------------------------------------------------
    # Planner support
    # ------------------------------------------------------------------
    def graph_statistics(self) -> GraphStatistics:
        """This fragment's planner statistics (cached by the local store)."""
        return self.store.statistics

    @property
    def planner(self) -> Optional[QueryPlanner]:
        return self.store.planner

    def enable_planner(self, plan_cache_size: Optional[int] = None) -> QueryPlanner:
        """Turn on cost-based planning for this site's local evaluation."""
        return self.store.enable_planner(plan_cache_size)

    def disable_planner(self) -> None:
        """Fall back to the static traversal order for local evaluation."""
        self.store.disable_planner()

    # ------------------------------------------------------------------
    # Local operations used by the engines
    # ------------------------------------------------------------------
    def local_evaluate(self, query: SelectQuery) -> ResultSet:
        """Evaluate ``query`` entirely inside this fragment.

        Used for star queries (whose results are always contained in one
        fragment because crossing edges are replicated) and by several
        baselines.
        """
        return self.store.evaluate(query)

    def local_evaluate_shard(self, query: SelectQuery, shard_index: int, num_shards: int):
        """One shard's slice of this fragment's local evaluation.

        Returns the shard's *raw* (unprojected) bindings: projection,
        DISTINCT and LIMIT only commute with concatenation when applied over
        the complete stream, so the coordinator concatenates the shards in
        shard order and finalizes once (:func:`repro.store.finalize_matches`).
        """
        return self.store.shard_matches(query, shard_index, num_shards)

    def internal_candidates(self, query: QueryGraph) -> Dict[PatternTerm, Set[Node]]:
        """Internal candidates ``C(Q, v)`` of every query vertex (Section VI).

        For an internal vertex every incident query edge must be locally
        supported (all its data edges are present in the fragment); edges are
        never relaxed here.
        """
        return self.store.candidates(query, restrict_to=self.fragment.internal_vertices)

    def local_matches(self, query: QueryGraph):
        """Complete (fragment-local) matches of ``query`` inside this fragment."""
        return self.store.find_matches(query)

    def stats(self) -> Dict[str, int]:
        return self.fragment.stats()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Site {self.name} fragment={self.fragment.name} triples={len(self.store)}>"


#: Task name under which a site's planner-statistics summary is collected
#: (used by :meth:`repro.distributed.Cluster.graph_statistics`).
GRAPH_STATISTICS_TASK = "graph_statistics"


@register_site_task(GRAPH_STATISTICS_TASK)
def _graph_statistics_task(site: Site, payload) -> GraphStatistics:
    """Site task: summarize this site's fragment for the coordinator planner."""
    del payload  # the summary needs no inputs beyond the site itself
    return site.graph_statistics()
