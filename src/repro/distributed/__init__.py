"""Distributed execution substrate: sites, message bus, cluster, statistics."""

from .cluster import AppliedDelta, Cluster, build_cluster
from .network import (
    COORDINATOR,
    GRAPH_BSP_PLATFORM,
    MAPREDUCE_PLATFORM,
    Message,
    MessageBus,
    NATIVE_PLATFORM,
    NetworkModel,
    PlatformModel,
    SPARK_SQL_PLATFORM,
    ShipmentLedger,
    ShipmentSnapshot,
    StageTimer,
    estimate_size,
)
from .site import Site
from .stats import QueryStatistics, StageStats, aggregate_graph_statistics

__all__ = [
    "AppliedDelta",
    "COORDINATOR",
    "Cluster",
    "GRAPH_BSP_PLATFORM",
    "MAPREDUCE_PLATFORM",
    "Message",
    "MessageBus",
    "NATIVE_PLATFORM",
    "NetworkModel",
    "PlatformModel",
    "QueryStatistics",
    "SPARK_SQL_PLATFORM",
    "ShipmentLedger",
    "ShipmentSnapshot",
    "Site",
    "StageStats",
    "StageTimer",
    "aggregate_graph_statistics",
    "build_cluster",
    "estimate_size",
]
