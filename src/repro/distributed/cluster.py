"""Cluster: the set of sites plus the coordinator-side bookkeeping.

A :class:`Cluster` is built from a :class:`~repro.partition.PartitionedGraph`
— one site per fragment — and owns the :class:`MessageBus` that every engine
uses to account for data shipment.  The cluster itself is engine-agnostic:
the gStoreD engine (``repro.core.engine``) and the baselines
(``repro.baselines``) all execute on top of the same cluster object, so
comparisons happen over identical data placement.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..exec import ExecutorBackend, SerialBackend, SiteTask
from ..partition.delta import apply_delta_effect
from ..partition.fragment import PartitionedGraph
from ..planner.optimizer import QueryPlanner
from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE
from ..planner.statistics import GraphStatistics
from ..rdf.graph import RDFGraph
from ..rdf.terms import Node
from ..rdf.triples import Triple
from ..store.encoding import encoded_view, patch_encoded_view
from .network import MessageBus, NetworkModel, StageTimer
from .site import Site
from .stats import aggregate_graph_statistics


@dataclass(frozen=True)
class AppliedDelta:
    """Summary of one :meth:`Cluster.apply` call."""

    #: Triples that were actually inserted (not already present).
    added: int
    #: Triples that were actually deleted (present before the call).
    removed: int

    @property
    def total(self) -> int:
        return self.added + self.removed


class Cluster:
    """A simulated cluster hosting one partitioned RDF graph."""

    def __init__(self, partitioned: PartitionedGraph, network: Optional[NetworkModel] = None) -> None:
        self._partitioned = partitioned
        self._sites: List[Site] = [Site(fragment.fragment_id, fragment) for fragment in partitioned]
        self.bus = MessageBus()
        #: Cost model used by every engine to convert shipped bytes into time.
        self.network = network if network is not None else NetworkModel()
        self._coordinator_planner: Optional[QueryPlanner] = None
        self._planner_lock = threading.Lock()
        # Bumped by every apply(); process-pool backends fold it into their
        # bootstrap binding so warm worker pools re-bootstrap after mutation.
        self._mutation_epoch = 0
        # Attached persistence backend (repro.persist.ClusterStore), if any.
        self._store = None
        # Stage timers of engines executing on this cluster (weakly held, so
        # a finished engine's timers can be collected); reset_network() clears
        # them alongside the bus to keep back-to-back runs independent.
        self._timers: "weakref.WeakSet[StageTimer]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def partitioned_graph(self) -> PartitionedGraph:
        return self._partitioned

    @property
    def graph(self) -> RDFGraph:
        """The full RDF graph (only used by ground-truth checks and baselines
        that replicate the whole dataset, such as DREAM)."""
        return self._partitioned.graph

    @property
    def sites(self) -> List[Site]:
        return list(self._sites)

    @property
    def num_sites(self) -> int:
        return len(self._sites)

    @property
    def site_ids(self) -> List[int]:
        return [site.site_id for site in self._sites]

    def site(self, site_id: int) -> Site:
        return self._sites[site_id]

    def __iter__(self) -> Iterator[Site]:
        return iter(self._sites)

    def __len__(self) -> int:
        return len(self._sites)

    def site_of_vertex(self, vertex: Node) -> Site:
        """The site whose fragment owns ``vertex`` as an internal vertex."""
        return self._sites[self._partitioned.fragment_of(vertex)]

    def rebuild_site(
        self,
        site_id: int,
        *,
        use_planner: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> Site:
        """Replace a site with a fresh one rebuilt from its fragment payload.

        The fault-recovery path: when the coordinator detects a site death
        (:mod:`repro.faults`), it re-bootstraps the site exactly the way a
        process-pool worker would — the fragment is serialized to its
        plain-data payload and materialized into a brand-new
        :class:`~repro.distributed.Site` with fresh indexes and planner —
        and swaps it into the cluster in place.  The graph data itself is
        never lost (fragments are the durable unit), so the rebuilt site
        answers identically to the one it replaces.
        """
        from ..exec.worker import build_site
        from ..partition.serialization import fragment_to_payload

        position = next(
            (index for index, site in enumerate(self._sites) if site.site_id == site_id),
            None,
        )
        if position is None:
            known = ", ".join(str(sid) for sid in self.site_ids) or "none"
            raise LookupError(f"cluster has no site {site_id} (sites: {known})")
        payload = fragment_to_payload(self._sites[position].fragment)
        site = build_site(payload, use_planner=use_planner, plan_cache_size=plan_cache_size)
        self._sites[position] = site
        return site

    def graph_statistics(self, backend: Optional[ExecutorBackend] = None) -> GraphStatistics:
        """Cluster-wide planner statistics, aggregated from the per-site
        summaries (the coordinator's global view of the data distribution).

        With a backend the per-site summaries are collected through its
        fan-out — expressed as :class:`~repro.exec.SiteTask` descriptors so
        even a process pool can run it — and the summaries merge in
        ``site_id`` order either way."""
        from .site import GRAPH_STATISTICS_TASK

        tasks = [
            SiteTask(site_id, GRAPH_STATISTICS_TASK)
            for site_id in sorted(site.site_id for site in self._sites)
        ]
        results = (backend or SerialBackend()).map_site_tasks(tasks, self)
        return aggregate_graph_statistics(result.value for result in results)

    def coordinator_planner(
        self,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        backend: Optional[ExecutorBackend] = None,
    ) -> QueryPlanner:
        """The coordinator-side planner over the aggregated statistics.

        Owned by the cluster (not the engine) so its plan cache survives
        across queries and across engine instances — repeated query shapes
        skip optimization no matter how the caller drives the engine.  The
        lazy build is lock-guarded: concurrent queries on one session must
        share a single planner (and its cache), not race to build two.
        """
        with self._planner_lock:
            if (
                self._coordinator_planner is None
                or self._coordinator_planner.cache.maxsize != plan_cache_size
            ):
                self._coordinator_planner = QueryPlanner(
                    self.graph_statistics(backend), cache_size=plan_cache_size
                )
            return self._coordinator_planner

    # ------------------------------------------------------------------
    # Mutation (delta application)
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        """Number of :meth:`apply` calls that changed this cluster so far."""
        return self._mutation_epoch

    @property
    def store(self):
        """The attached :class:`~repro.persist.ClusterStore`, or ``None``."""
        return self._store

    def attach_store(self, store) -> None:
        """Attach a persistence backend: subsequent :meth:`apply` calls are
        journaled to its write-ahead delta table, and process-pool workers
        bootstrap by opening the store file instead of unpickling fragments."""
        self._store = store

    def apply(
        self,
        add: Iterable[Triple] = (),
        remove: Iterable[Triple] = (),
    ) -> AppliedDelta:
        """Apply a triple delta to the whole cluster, in place.

        Removals run first, then additions; no-ops (adding a present triple,
        removing an absent one) are skipped.  Every effective op is routed to
        its fragments by the sticky :class:`~repro.partition.delta.DeltaRouter`
        and folded into the master graph, the fragment vertex/edge sets and
        the site stores; the dictionary encodings are then *patched* eagerly
        (never rebuilt), so the resulting id assignment is a pure function of
        (base state, op sequence).  A replica replaying the same ops from the
        same base — a reopened store file, a process-pool worker — therefore
        reaches the bit-identical encoding, which is what keeps answers,
        match sequences and shipment fingerprints stable across restarts.

        Callers must not run queries concurrently with ``apply`` (the same
        contract as direct graph mutation; :meth:`Session.update
        <repro.api.Session.update>` enforces it with an exclusive writer
        gate).  With an attached store the effective ops are appended to its
        write-ahead delta table before this method returns.  If that append
        fails, the in-memory mutation has already happened while the store
        rolled back — the raised exception carries a note naming the
        divergence so the caller can re-snapshot or discard the store.
        """
        staged = [("-", triple) for triple in remove]
        staged.extend(("+", triple) for triple in add)
        return self.apply_ops(staged)

    def apply_ops(self, ops: Iterable[Tuple[str, Triple]]) -> AppliedDelta:
        """Apply an explicit ``("+"|"-", triple)`` sequence in order.

        The replay entry point: :meth:`apply` stages its arguments through
        here, and the persistence layer replays a store file's write-ahead
        delta table through here so a reopened cluster walks the exact same
        code path (and reaches the exact same state) as the live one did.
        """
        staged = list(ops)
        if not staged:
            return AppliedDelta(0, 0)
        graph = self.graph
        # Force every encoding *before* mutating: patching from a known
        # base state is what replicas replay against.
        master_encoded = encoded_view(graph)
        site_encoded = {
            site.site_id: encoded_view(site.store.graph) for site in self._sites
        }
        sites_by_id = {site.site_id: site for site in self._sites}
        router = self._partitioned.delta_router()
        master_ops: List[Tuple[str, Triple]] = []
        site_ops: Dict[int, List[Tuple[str, Triple]]] = {
            site.site_id: [] for site in self._sites
        }
        added = removed = 0
        for op, triple in staged:
            if op == "+":
                if not graph.add(triple):
                    continue
                added += 1
            else:
                if not graph.discard(triple):
                    continue
                removed += 1
            master_ops.append((op, triple))
            for effect in router.route(op, triple):
                site = sites_by_id[effect.fragment_id]
                if op == "+":
                    site.store.add(triple)
                else:
                    site.store.discard(triple)
                apply_delta_effect(site.fragment, effect, graph=site.store.graph)
                # Fault recovery may have swapped in a site whose fragment is
                # a rebuilt copy; keep the partitioning's own fragment (the
                # durable source for payloads and saves) in step too.
                partitioned_fragment = self._partitioned.fragment(effect.fragment_id)
                if partitioned_fragment is not site.fragment:
                    apply_delta_effect(partitioned_fragment, effect, graph=site.store.graph)
                site_ops[effect.fragment_id].append((op, triple))
        if not master_ops:
            return AppliedDelta(0, 0)
        patch_encoded_view(graph, master_encoded, master_ops)
        for site in self._sites:
            ops_here = site_ops[site.site_id]
            if ops_here:
                patch_encoded_view(site.store.graph, site_encoded[site.site_id], ops_here)
        with self._planner_lock:
            if self._coordinator_planner is not None:
                statistics = self._coordinator_planner.statistics
                if statistics is not None:
                    statistics.replace_with(self.graph_statistics())
                # Cached orders were chosen against the old statistics.
                self._coordinator_planner.cache.clear()
        self._mutation_epoch += 1
        if self._store is not None:
            try:
                self._store.append_ops(master_ops)
            except BaseException as error:
                # The in-memory apply above already landed, but the journal
                # rolled back: the live cluster is now *ahead* of the store,
                # and a reopened store will not replay these ops.  Flag the
                # divergence on the exception so the caller can re-snapshot
                # (ClusterStore.create(..., overwrite=True)) or discard the
                # live state instead of silently serving unjournaled data.
                error.add_note(
                    f"cluster/store divergence: {len(master_ops)} applied op(s) "
                    f"were not journaled to {getattr(self._store, 'path', self._store)!s}; "
                    "the store is behind the live cluster until re-snapshotted"
                )
                raise
        return AppliedDelta(added, removed)

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def track_timer(self, timer: StageTimer) -> None:
        """Register a stage timer so :meth:`reset_network` can clear it."""
        self._timers.add(timer)

    def reset_network(self) -> None:
        """Clear message accounting *and* stage-timer state between runs.

        Engines register their per-execution :class:`StageTimer` here; a
        benchmark that reuses a timer (or an engine) across back-to-back runs
        would otherwise accumulate stale per-site totals on top of the stale
        message log.
        """
        self.bus.reset()
        for timer in list(self._timers):
            timer.reset()
        self._timers.clear()

    def stats(self) -> Dict[str, object]:
        return {
            "sites": self.num_sites,
            **self._partitioned.stats(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Cluster sites={self.num_sites} strategy={self._partitioned.strategy!r}>"


def build_cluster(partitioned: PartitionedGraph, network: Optional[NetworkModel] = None) -> Cluster:
    """Convenience constructor mirroring ``build_partitioned_graph``."""
    return Cluster(partitioned, network=network)
