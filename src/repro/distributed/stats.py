"""Per-query execution statistics.

The paper's Tables I–III report, for every benchmark query, the time and
data shipment of each stage of the pipeline plus intermediate/final result
counts.  :class:`StageStats` records one stage and :class:`QueryStatistics`
aggregates a whole query execution; the benchmark harness renders them into
the same table rows as the paper.

"Time" in the simulation has two flavours:

* ``parallel_time_s`` — the maximum per-site wall-clock time of a stage (the
  sites run in parallel in the real system), plus coordinator time, and
* ``total_cpu_time_s`` — the sum over all sites (useful to understand the
  total work done).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..planner.statistics import GraphStatistics


@dataclass
class StageStats:
    """Timing, shipment and counters for one pipeline stage."""

    name: str
    site_times_s: Dict[int, float] = field(default_factory=dict)
    coordinator_time_s: float = 0.0
    #: Modelled time spent moving this stage's messages over the network
    #: (computed from the cluster's :class:`~repro.distributed.NetworkModel`).
    network_time_s: float = 0.0
    #: Modelled platform overhead (cloud job scheduling / shuffles); zero for
    #: the native engines.
    platform_time_s: float = 0.0
    shipped_bytes: int = 0
    messages: int = 0
    counters: Dict[str, int] = field(default_factory=dict)

    def record_site_time(self, site_id: int, seconds: float) -> None:
        self.site_times_s[site_id] = self.site_times_s.get(site_id, 0.0) + seconds

    def add_counter(self, name: str, value: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    @property
    def parallel_time_s(self) -> float:
        """Site work runs in parallel: max over sites, plus coordinator work,
        plus the modelled network-transfer and platform overheads."""
        slowest_site = max(self.site_times_s.values(), default=0.0)
        return slowest_site + self.coordinator_time_s + self.network_time_s + self.platform_time_s

    @property
    def total_cpu_time_s(self) -> float:
        return sum(self.site_times_s.values()) + self.coordinator_time_s

    @property
    def parallel_time_ms(self) -> float:
        return self.parallel_time_s * 1000.0

    @property
    def shipped_kb(self) -> float:
        return self.shipped_bytes / 1024.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "stage": self.name,
            "time_ms": round(self.parallel_time_ms, 3),
            "cpu_time_ms": round(self.total_cpu_time_s * 1000.0, 3),
            "shipment_kb": round(self.shipped_kb, 3),
            "messages": self.messages,
            **self.counters,
        }


@dataclass
class QueryStatistics:
    """All stages of one query execution plus result-level counters."""

    query_name: str = ""
    engine: str = ""
    dataset: str = ""
    partitioning: str = ""
    stages: List[StageStats] = field(default_factory=list)
    num_results: int = 0
    extra: Dict[str, object] = field(default_factory=dict)
    #: Work counters that are *not* table columns (``as_row`` excludes them):
    #: deterministic work measures like the matcher's total ``search_steps``
    #: across sites, consumed by the observability layer and equivalence
    #: tests rather than the paper's table renderer.
    work: Dict[str, int] = field(default_factory=dict)

    def stage(self, name: str) -> StageStats:
        """Get (or lazily create) the stage named ``name``."""
        for stage in self.stages:
            if stage.name == name:
                return stage
        stage = StageStats(name)
        self.stages.append(stage)
        return stage

    def find_stage(self, name: str) -> Optional[StageStats]:
        return next((stage for stage in self.stages if stage.name == name), None)

    @property
    def total_time_s(self) -> float:
        """End-to-end response time: the stages run one after another."""
        return sum(stage.parallel_time_s for stage in self.stages)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_s * 1000.0

    @property
    def total_shipment_bytes(self) -> int:
        return sum(stage.shipped_bytes for stage in self.stages)

    @property
    def total_shipment_kb(self) -> float:
        return self.total_shipment_bytes / 1024.0

    def counter(self, stage_name: str, counter_name: str, default: int = 0) -> int:
        stage = self.find_stage(stage_name)
        if stage is None:
            return default
        return stage.counters.get(counter_name, default)

    def snapshot(self) -> "QueryStatistics":
        """A deep copy sharing no mutable state with this instance.

        The session layer snapshots each query's statistics into its
        :class:`~repro.api.Result` so that nothing a later query does to the
        cluster (``reset_network()`` clearing timers, engines reusing stage
        objects) can mutate or zero an already-returned result's numbers.
        """
        return QueryStatistics(
            query_name=self.query_name,
            engine=self.engine,
            dataset=self.dataset,
            partitioning=self.partitioning,
            stages=[
                StageStats(
                    name=stage.name,
                    site_times_s=dict(stage.site_times_s),
                    coordinator_time_s=stage.coordinator_time_s,
                    network_time_s=stage.network_time_s,
                    platform_time_s=stage.platform_time_s,
                    shipped_bytes=stage.shipped_bytes,
                    messages=stage.messages,
                    counters=dict(stage.counters),
                )
                for stage in self.stages
            ],
            num_results=self.num_results,
            extra=dict(self.extra),
            work=dict(self.work),
        )

    def as_row(self) -> Dict[str, object]:
        """Flatten into a single report row (used by the benchmark tables)."""
        row: Dict[str, object] = {
            "query": self.query_name,
            "engine": self.engine,
            "dataset": self.dataset,
            "partitioning": self.partitioning,
            "total_time_ms": round(self.total_time_ms, 3),
            "total_shipment_kb": round(self.total_shipment_kb, 3),
            "results": self.num_results,
        }
        for stage in self.stages:
            prefix = stage.name
            row[f"{prefix}_time_ms"] = round(stage.parallel_time_ms, 3)
            row[f"{prefix}_shipment_kb"] = round(stage.shipped_kb, 3)
            for counter, value in stage.counters.items():
                row[f"{prefix}_{counter}"] = value
        row.update(self.extra)
        return row


def aggregate_graph_statistics(parts: Iterable["GraphStatistics"]) -> "GraphStatistics":
    """Merge per-site planner statistics into one cluster-wide summary.

    This is how the coordinator builds its global view: every site
    summarizes its own fragment once (``Site.graph_statistics``), ships the
    small summary, and the coordinator aggregates — it never touches the
    fragments themselves.  See :func:`repro.planner.statistics.merge_statistics`
    for the aggregation semantics.
    """
    from ..planner.statistics import merge_statistics

    return merge_statistics(parts)
