"""Simulated cluster network with data-shipment accounting.

The real gStoreD prototype runs over MPI; this reproduction keeps everything
in one process but routes every inter-site exchange through a
:class:`MessageBus` so that the *data shipment* each stage causes can be
measured in bytes, exactly the quantity the paper's Tables I-III report.

Message payloads are measured by a structural size estimator instead of
pickling: the estimator charges realistic serialized sizes for RDF terms,
tuples and the framework's own messages (LEC features, bit vectors, local
partial matches), which keeps the measurement deterministic and cheap.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..rdf.terms import Term
from ..rdf.triples import Triple, TriplePattern

#: Site id used for the coordinator in message source/destination fields.
COORDINATOR = -1


@dataclass(frozen=True)
class NetworkModel:
    """Cost model translating shipped bytes/messages into transfer time.

    The simulation runs in one process, so the wall-clock it measures covers
    computation only; the response times the paper reports also include the
    time spent moving intermediate data between machines.  This model charges
    a per-message latency plus a bandwidth-proportional transfer time, and is
    deliberately simple and explicit — both parameters are calibration knobs
    of the simulation (defaults approximate a 1 Gb/s datacenter network).
    """

    latency_s: float = 0.0001
    bandwidth_bytes_per_s: float = 125_000_000.0

    def transfer_time(self, shipped_bytes: int, messages: int) -> float:
        """Seconds spent on the wire for ``messages`` totalling ``shipped_bytes``."""
        if shipped_bytes <= 0 and messages <= 0:
            return 0.0
        return messages * self.latency_s + shipped_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class PlatformModel:
    """Per-stage overhead of the execution platform an engine runs on.

    The cloud-based comparison systems (S2RDF, CliqueSquare, S2X) execute
    every query as a sequence of Spark/Hadoop/GraphX stages; each stage pays
    scheduling, task-launch and shuffle-materialization overhead that native
    MPI engines (gStoreD, DREAM) do not.  The per-stage constant below is the
    scaled-down stand-in for that overhead (real deployments measure hundreds
    of milliseconds to seconds per stage).
    """

    stage_overhead_s: float = 0.0

    def stage_cost(self, stages: int = 1) -> float:
        return self.stage_overhead_s * max(stages, 0)


#: Native engines (gStoreD, DREAM): no platform overhead beyond the network.
NATIVE_PLATFORM = PlatformModel(0.0)
#: Spark SQL-style stages (S2RDF).
SPARK_SQL_PLATFORM = PlatformModel(0.050)
#: MapReduce-style stages (CliqueSquare).
MAPREDUCE_PLATFORM = PlatformModel(0.080)
#: Graph-parallel supersteps (S2X).
GRAPH_BSP_PLATFORM = PlatformModel(0.030)


def estimate_size(payload: Any) -> int:
    """Estimate the serialized size of ``payload`` in bytes.

    RDF terms are charged their N3 text length; containers are charged the
    sum of their elements plus a small framing overhead; objects exposing a
    ``shipment_size()`` method (LEC features, local partial matches, bit
    vectors) delegate to it.
    """
    if payload is None:
        return 1
    if hasattr(payload, "shipment_size"):
        return int(payload.shipment_size())
    if isinstance(payload, Term):
        return len(payload.n3())
    if isinstance(payload, (Triple, TriplePattern)):
        return len(payload.n3())
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        return 8
    if isinstance(payload, float):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, bytes):
        return len(payload)
    if isinstance(payload, dict):
        return 4 + sum(estimate_size(k) + estimate_size(v) for k, v in payload.items())
    if isinstance(payload, (list, tuple, set, frozenset)):
        return 4 + sum(estimate_size(item) for item in payload)
    # Fallback: charge the repr length; rarely hit in practice.
    return len(repr(payload))


@dataclass(frozen=True)
class Message:
    """One point-to-point message recorded by the bus."""

    source: int
    destination: int
    kind: str
    size_bytes: int
    stage: str


@dataclass(frozen=True)
class ShipmentSnapshot:
    """An immutable summary of the bus at one point in time.

    Taken with :meth:`MessageBus.snapshot` *before* the bus is reset between
    queries, so a finished query's shipment breakdown (by stage and by
    message kind) survives the next ``Cluster.reset_network()`` — this is
    what the session layer attaches to each :class:`~repro.api.Result`.
    """

    total_bytes: int
    total_messages: int
    bytes_by_stage: Dict[str, int]
    messages_by_stage: Dict[str, int]
    bytes_by_kind: Dict[str, int]


def _summarize(messages: List[Message]) -> ShipmentSnapshot:
    """Fold a message log into an immutable :class:`ShipmentSnapshot`."""
    bytes_by_stage: Dict[str, int] = {}
    messages_by_stage: Dict[str, int] = {}
    bytes_by_kind: Dict[str, int] = {}
    total = 0
    for message in messages:
        total += message.size_bytes
        bytes_by_stage[message.stage] = bytes_by_stage.get(message.stage, 0) + message.size_bytes
        messages_by_stage[message.stage] = messages_by_stage.get(message.stage, 0) + 1
        bytes_by_kind[message.kind] = bytes_by_kind.get(message.kind, 0) + message.size_bytes
    return ShipmentSnapshot(
        total_bytes=total,
        total_messages=len(messages),
        bytes_by_stage=bytes_by_stage,
        messages_by_stage=messages_by_stage,
        bytes_by_kind=bytes_by_kind,
    )


class ShipmentLedger:
    """Message accounting scoped to one query execution.

    Opened with :meth:`MessageBus.ledger`.  While a ledger is active on a
    thread, every message that thread sends through the bus is recorded here
    *instead of* the bus's global log, so concurrent queries over one cluster
    never see each other's shipment — and never need the global
    ``reset()``/``snapshot()`` window that made back-to-back accounting racy.

    A ledger is thread-confined by construction: the bus routes a send to the
    ledger only from the thread that opened it, and engines issue every send
    from the serial merge on the thread driving ``execute()`` (the
    determinism contract of :mod:`repro.exec.backend`).  No lock is needed.
    """

    __slots__ = ("messages",)

    def __init__(self) -> None:
        self.messages: List[Message] = []

    def record(self, message: Message) -> None:
        self.messages.append(message)

    @property
    def total_bytes(self) -> int:
        return sum(message.size_bytes for message in self.messages)

    @property
    def total_messages(self) -> int:
        return len(self.messages)

    def snapshot(self) -> ShipmentSnapshot:
        """Summarize the ledger into an immutable :class:`ShipmentSnapshot`."""
        return _summarize(self.messages)


@dataclass
class MessageBus:
    """Records every message sent between sites / the coordinator.

    The bus is shared by every site, so with a threaded execution backend
    concurrent sends are possible; an internal lock keeps the message log and
    its derived counters consistent.  (The engines additionally issue their
    sends from the deterministic site-order merge, so the *order* of the log
    does not depend on the backend either.)
    """

    messages: List[Message] = field(default_factory=list)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False, compare=False)
    #: Active per-query ledgers, a stack per sending thread (see
    #: :meth:`ledger`); guarded by ``_lock`` like the global log.
    _ledgers: Dict[int, List[ShipmentLedger]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Active fault injectors, a stack per sending thread (see
    #: :meth:`fault_scope`); guarded by ``_lock`` like the ledgers.
    _injectors: Dict[int, List[Callable[[int, int, str, str], None]]] = field(
        default_factory=dict, repr=False, compare=False
    )

    def send(self, source: int, destination: int, kind: str, payload: Any, stage: str = "") -> int:
        """Record a message and return its estimated size in bytes.

        When the sending thread has an open :class:`ShipmentLedger` (see
        :meth:`ledger`) the message is charged to that ledger instead of the
        global log, scoping the accounting to the query that opened it.

        When the sending thread has an active fault injector (see
        :meth:`fault_scope`) it is consulted *before* any accounting: an
        injector that raises (a site dying as it ships) aborts the send with
        nothing recorded, so a failed shipment ships zero bytes.
        """
        with self._lock:
            injector_stack = self._injectors.get(threading.get_ident())
            injector = injector_stack[-1] if injector_stack else None
        if injector is not None:
            injector(source, destination, kind, stage)
        size = estimate_size(payload)
        message = Message(source, destination, kind, size, stage)
        with self._lock:
            stack = self._ledgers.get(threading.get_ident())
            ledger = stack[-1] if stack else None
            if ledger is None:
                self.messages.append(message)
        if ledger is not None:
            ledger.record(message)
        return size

    def broadcast(self, source: int, destinations: List[int], kind: str, payload: Any, stage: str = "") -> int:
        """Send the same payload to every destination; return the total bytes."""
        return sum(self.send(source, destination, kind, payload, stage) for destination in destinations)

    @contextmanager
    def ledger(self) -> Iterator[ShipmentLedger]:
        """Scope this thread's sends to a fresh :class:`ShipmentLedger`.

        Nested ledgers stack (the innermost wins); other threads' sends — and
        this thread's sends outside the ``with`` block — keep hitting the
        global log, so engine-level callers that read the bus directly are
        unaffected.
        """
        opened = ShipmentLedger()
        ident = threading.get_ident()
        with self._lock:
            self._ledgers.setdefault(ident, []).append(opened)
        try:
            yield opened
        finally:
            with self._lock:
                stack = self._ledgers.get(ident, [])
                if opened in stack:
                    stack.remove(opened)
                if not stack:
                    self._ledgers.pop(ident, None)

    @contextmanager
    def fault_scope(self, injector: Callable[[int, int, str, str], None]) -> Iterator[None]:
        """Consult ``injector`` before every send this thread issues.

        The shipment-layer hook of the fault-injection framework
        (:class:`repro.faults.ShipmentFaultInjector`): while the scope is
        open, each ``send`` from this thread calls
        ``injector(source, destination, kind, stage)`` first, and a raise —
        a site dying mid-shipment — aborts that send before any byte is
        recorded.  Thread-scoped and stacked exactly like :meth:`ledger`, so
        concurrent queries over one cluster never see each other's faults.
        """
        ident = threading.get_ident()
        with self._lock:
            self._injectors.setdefault(ident, []).append(injector)
        try:
            yield
        finally:
            with self._lock:
                stack = self._injectors.get(ident, [])
                if injector in stack:
                    stack.remove(injector)
                if not stack:
                    self._injectors.pop(ident, None)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(message.size_bytes for message in self.messages)

    @property
    def total_messages(self) -> int:
        with self._lock:
            return len(self.messages)

    def bytes_for_stage(self, stage: str) -> int:
        with self._lock:
            return sum(m.size_bytes for m in self.messages if m.stage == stage)

    def messages_for_stage(self, stage: str) -> int:
        with self._lock:
            return sum(1 for m in self.messages if m.stage == stage)

    def bytes_by_kind(self) -> Dict[str, int]:
        with self._lock:
            totals: Dict[str, int] = {}
            for message in self.messages:
                totals[message.kind] = totals.get(message.kind, 0) + message.size_bytes
            return totals

    def snapshot(self) -> ShipmentSnapshot:
        """Summarize the current log into an immutable :class:`ShipmentSnapshot`."""
        with self._lock:
            messages = list(self.messages)
        return _summarize(messages)

    def reset(self) -> None:
        with self._lock:
            self.messages.clear()


class StageTimer:
    """Context-manager helper to time site / coordinator work within a stage.

    With a threaded backend several sites measure concurrently; each
    accumulation into the shared table happens under a lock so no sample is
    lost, and the per-``(stage, site_id)`` keys never collide between sites.
    """

    def __init__(self) -> None:
        self._elapsed: Dict[Tuple[str, int], float] = {}
        self._lock = threading.Lock()

    @contextmanager
    def measure(self, stage: str, site_id: int = COORDINATOR) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage, site_id, time.perf_counter() - started)

    def record(self, stage: str, site_id: int, elapsed_s: float) -> None:
        """Accumulate an externally measured duration for ``(stage, site_id)``.

        Used by the execution runtime: site tasks measure their own handler
        wall-clock (possibly in another process, where this timer does not
        exist) and the engine's serial merge records the samples here.
        """
        key = (stage, site_id)
        with self._lock:
            self._elapsed[key] = self._elapsed.get(key, 0.0) + elapsed_s

    def elapsed(self, stage: str, site_id: int = COORDINATOR) -> float:
        with self._lock:
            return self._elapsed.get((stage, site_id), 0.0)

    def site_times(self, stage: str) -> Dict[int, float]:
        with self._lock:
            return {
                site_id: seconds
                for (stage_name, site_id), seconds in self._elapsed.items()
                if stage_name == stage and site_id != COORDINATOR
            }

    def reset(self) -> None:
        """Forget every accumulated sample (used between benchmark runs)."""
        with self._lock:
            self._elapsed.clear()
