"""Execution runtime: pluggable backends for the engine's per-site fan-out."""

from .backend import (
    EXECUTOR_CHOICES,
    EXECUTOR_ENV_VAR,
    MAX_WORKERS_ENV_VAR,
    SERIAL,
    THREADS,
    ExecutorBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_max_workers,
    make_backend,
    run_per_site,
)

__all__ = [
    "EXECUTOR_CHOICES",
    "EXECUTOR_ENV_VAR",
    "MAX_WORKERS_ENV_VAR",
    "SERIAL",
    "THREADS",
    "ExecutorBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "default_max_workers",
    "make_backend",
    "run_per_site",
]
