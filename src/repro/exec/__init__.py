"""Execution runtime: pluggable backends for the engine's per-site fan-out.

Three backends share one determinism contract (results merge in ``site_id``
order; all shared-state mutation stays in the coordinator's serial merge):

* :class:`SerialBackend` — the reference behavior, one site after another;
* :class:`ThreadPoolBackend` — overlapping threads (I/O and free-threaded
  builds benefit; the GIL serializes pure-Python work);
* :class:`ProcessPoolBackend` — worker processes that each bootstrap the
  cluster's sites once and execute picklable :class:`SiteTask` descriptors,
  for true multi-core speedup on stock CPython.

See ``docs/execution.md`` for the contract, the picklability rules and when
each backend wins.
"""

from .backend import (
    EXECUTOR_CHOICES,
    EXECUTOR_ENV_VAR,
    MAX_WORKERS_ENV_VAR,
    PROCESSES,
    SERIAL,
    THREADS,
    ExecutorBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_max_workers,
    make_backend,
    run_per_site,
)
from .tasks import (
    SiteTask,
    SiteTaskResult,
    execute_site_task,
    register_site_task,
    registered_site_tasks,
    run_site_task,
)
from .worker import WorkerBootstrap, initialize_worker, worker_is_initialized

__all__ = [
    "EXECUTOR_CHOICES",
    "EXECUTOR_ENV_VAR",
    "MAX_WORKERS_ENV_VAR",
    "PROCESSES",
    "SERIAL",
    "THREADS",
    "ExecutorBackend",
    "ProcessPoolBackend",
    "SerialBackend",
    "SiteTask",
    "SiteTaskResult",
    "ThreadPoolBackend",
    "WorkerBootstrap",
    "default_max_workers",
    "execute_site_task",
    "initialize_worker",
    "make_backend",
    "register_site_task",
    "registered_site_tasks",
    "run_per_site",
    "run_site_task",
    "worker_is_initialized",
]
