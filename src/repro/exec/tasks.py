"""Site-task descriptors: the picklable unit of per-site work.

The thread-pool backend of PR 2 could fan closures out over the sites, but a
closure captures the engine, the cluster and the message bus — none of which
can (or should) cross a process boundary.  This module replaces closures with
*descriptors*: a :class:`SiteTask` names the target site, a registered stage
handler and an explicit, picklable payload.  Handlers are plain module-level
functions registered under a string key, so a worker process can resolve the
same handler by name after unpickling the descriptor.

The flow is symmetric across backends:

* in-process backends (serial, threads) resolve the task's site from the live
  :class:`~repro.distributed.Cluster` and call the handler directly;
* the process-pool backend pickles the descriptor to a worker whose
  bootstrapped site registry (:mod:`repro.exec.worker`) supplies the site.

Either way a handler receives ``(site, payload)`` and returns a picklable
value; :func:`execute_site_task` wraps it with the measured wall-clock time so
the engine's serial merge can feed the per-site stage timers without the
tasks ever touching shared state.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Mapping, Optional

from ..faults import (
    FAILURE_SITE_DOWN,
    FAILURE_TRANSIENT_EXHAUSTED,
    DEFAULT_RETRY_POLICY,
    FaultPlan,
    RetryPolicy,
    SiteDownError,
    TaskFailure,
    TransientTaskError,
)
from ..obs.trace import SpanContext, TaskSpan

#: Registered stage handlers, keyed by task name.  Handlers are registered at
#: import time by the modules that define them (:mod:`repro.core.site_tasks`,
#: :mod:`repro.distributed.site`); worker processes import the same modules,
#: so both sides of a process boundary resolve identical functions.
_HANDLERS: Dict[str, Callable[[Any, Mapping[str, Any]], Any]] = {}

#: Stages registered with ``payload_bound=True``: their input/output payload
#: dwarfs their compute (pure regrouping or filtering of already-materialized
#: data), so shipping them to another process costs more in pickling than the
#: parallelism could ever return.  Process pools run these inline in the
#: coordinator; results are bit-identical either way — this is purely a
#: scheduling decision.
PAYLOAD_BOUND_STAGES: set = set()


@dataclass(frozen=True)
class SiteTask:
    """One unit of per-site work: ``(site_id, stage, payload)``.

    ``payload`` must contain only picklable values — it is the *entire* input
    of the handler beyond the site itself.  Handlers must not reach for the
    cluster, the message bus or the engine; that is what makes the same task
    executable in another process.

    ``trace`` (optional) is the :class:`~repro.obs.SpanContext` of the
    coordinator's open stage span; when set, :func:`execute_site_task`
    measures a :class:`~repro.obs.TaskSpan` for the handler so the trace can
    reassemble per-site spans after the fan-out.  Like the payload it is
    plain picklable data — tracing survives the process-pool backend without
    the backends knowing about it.

    ``attempt``/``recovery``/``faults``/``retry`` belong to the fault-injection
    layer (:mod:`repro.faults`): ``faults`` is the plan consulted before the
    handler runs, ``retry`` the transient-failure budget
    :func:`run_site_task` applies, ``attempt`` the 1-based attempt number the
    retry loop stamps, and ``recovery`` marks a coordinator-driven re-run
    against a rebuilt site.  All four are plain picklable data and default to
    the fault-free configuration, so clean runs carry no extra state.
    """

    site_id: int
    stage: str
    payload: Mapping[str, Any] = field(default_factory=dict)
    trace: Optional[SpanContext] = None
    attempt: int = 1
    recovery: bool = False
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None


@dataclass(frozen=True)
class SiteTaskResult:
    """A handler's return value plus the wall-clock seconds it took.

    ``elapsed_s`` is measured around the handler alone (no pickling, no
    queueing), so the engine's stage timers report comparable per-site compute
    times for every backend.

    ``span`` is populated only when the task carried a trace context: the raw
    :class:`~repro.obs.TaskSpan` measured where the handler ran, for the
    coordinator's merge to fold into the query trace.

    ``attempts`` counts every attempt :func:`run_site_task` consumed; on
    success ``elapsed_s`` covers the *successful attempt only*, so a retried
    task never double-counts failed attempts into the engine's stage timers.
    ``failure`` is set — with ``value=None`` and ``elapsed_s=0.0`` — when the
    task's site died or its retries ran out; the coordinator's serial merge
    decides between recovery and degradation.
    """

    site_id: int
    stage: str
    elapsed_s: float
    value: Any
    span: Optional[TaskSpan] = None
    attempts: int = 1
    failure: Optional[TaskFailure] = None


def register_site_task(stage: str, payload_bound: bool = False) -> Callable[[Callable], Callable]:
    """Decorator registering the decorated function as the handler for ``stage``.

    ``payload_bound=True`` marks the stage as cheaper to run inline than to
    ship (see :data:`PAYLOAD_BOUND_STAGES`).  Registration is idempotent per
    name but refuses to silently replace a different function — two modules
    claiming the same stage name is a bug.
    """

    def decorator(fn: Callable[[Any, Mapping[str, Any]], Any]) -> Callable:
        existing = _HANDLERS.get(stage)
        if existing is not None and existing is not fn:
            raise ValueError(f"site task {stage!r} is already registered to {existing!r}")
        _HANDLERS[stage] = fn
        if payload_bound:
            PAYLOAD_BOUND_STAGES.add(stage)
        return fn

    return decorator


def registered_site_tasks() -> Dict[str, Callable]:
    """A snapshot of the registered handlers (importing the built-ins first)."""
    _import_builtin_handlers()
    return dict(_HANDLERS)


def _import_builtin_handlers() -> None:
    """Import every module that registers built-in handlers.

    Deferred to call time: :mod:`repro.core.site_tasks` and
    :mod:`repro.distributed.site` both import :mod:`repro.exec`, so importing
    them from the top of this module would be circular.  Worker processes hit
    this on their first task, which is exactly when they need the registry.
    """
    from ..core import site_tasks  # noqa: F401  (registers the engine's stage tasks)
    from ..distributed import site  # noqa: F401  (registers graph_statistics)


def _resolve_handler(stage: str) -> Callable[[Any, Mapping[str, Any]], Any]:
    if stage not in _HANDLERS:
        _import_builtin_handlers()
    try:
        return _HANDLERS[stage]
    except KeyError:
        known = ", ".join(sorted(_HANDLERS)) or "none"
        raise LookupError(f"no site task registered as {stage!r} (known: {known})") from None


#: Per-site execution locks: stage handlers read work counters off the
#: site's store *after* evaluating (``site.store.matcher.search_steps``), so
#: two concurrent queries hammering the same site would interleave those
#: counters.  Within one query the per-site fan-out targets distinct sites —
#: distinct locks — so this serializes nothing the backends parallelize;
#: across queries it makes each site's handler runs atomic.  Keyed weakly so
#: a dropped cluster's sites don't pin their locks.
_SITE_LOCKS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_SITE_LOCKS_GUARD = threading.Lock()


def _site_lock(site: Any) -> threading.RLock:
    with _SITE_LOCKS_GUARD:
        lock = _SITE_LOCKS.get(site)
        if lock is None:
            lock = _SITE_LOCKS[site] = threading.RLock()
        return lock


def execute_site_task(task: SiteTask, site: Optional[Any] = None) -> SiteTaskResult:
    """Run ``task`` against ``site`` and return its timed result.

    With ``site=None`` the site is resolved from this process's bootstrapped
    worker registry (:func:`repro.exec.worker.resolve_site`) — the process-pool
    path, where this function is the picklable top-level entry point every
    worker executes.  In-process backends pass the live site explicitly.

    Handler runs are serialized per site (see :data:`_SITE_LOCKS`); the lock
    is taken *before* the timing starts, so waiting on a concurrent query
    never inflates this task's measured compute time.
    """
    if site is None:
        from . import worker

        site = worker.resolve_site(task.site_id)
    handler = _resolve_handler(task.stage)
    with _site_lock(site):
        started = time.perf_counter()
        if task.faults is not None:
            # Inside the timing window on purpose: injected straggler latency
            # (``slow`` entries) must show up in the attempt's measured time.
            task.faults.before_task(task)
        value = handler(site, task.payload)
        ended = time.perf_counter()
    span = None
    if task.trace is not None:
        span = TaskSpan(
            site_id=task.site_id,
            stage=task.stage,
            start_s=started,
            end_s=ended,
            pid=os.getpid(),
            context=task.trace,
        )
    return SiteTaskResult(task.site_id, task.stage, ended - started, value, span)


def run_site_task(task: SiteTask, site: Optional[Any] = None) -> SiteTaskResult:
    """Run ``task`` with the retry/failure semantics of the fault layer.

    This is what every backend maps over site tasks (and, like
    :func:`execute_site_task`, a picklable top-level entry point for the
    process pool).  The contract:

    * :class:`~repro.faults.TransientTaskError` is retried in place up to the
      task's :class:`~repro.faults.RetryPolicy` budget with capped
      exponential backoff; on success only the successful attempt's
      ``elapsed_s`` is reported (failed attempts never reach the stage
      timers) and ``attempts`` records how many tries it took.
    * :class:`~repro.faults.SiteDownError` — and an exhausted retry budget —
      produce a *failed* result (``value=None``, ``failure`` set) instead of
      raising, so one dead site cannot poison a whole backend batch; the
      coordinator's serial merge turns the failure into recovery or
      degradation.
    * Any other exception is a real bug in a handler and propagates
      unchanged.

    Fault-free tasks take the first branch on attempt 1 and behave exactly
    like :func:`execute_site_task`.
    """
    policy = task.retry if task.retry is not None else DEFAULT_RETRY_POLICY
    attempts = 0
    while True:
        attempts += 1
        current = task if attempts == task.attempt else replace(task, attempt=attempts)
        try:
            result = execute_site_task(current, site)
        except SiteDownError as error:
            failure = TaskFailure(FAILURE_SITE_DOWN, str(error), recoverable=error.recoverable)
            return SiteTaskResult(
                task.site_id, task.stage, 0.0, None, attempts=attempts, failure=failure
            )
        except TransientTaskError as error:
            if attempts >= policy.max_attempts:
                failure = TaskFailure(FAILURE_TRANSIENT_EXHAUSTED, str(error), recoverable=True)
                return SiteTaskResult(
                    task.site_id, task.stage, 0.0, None, attempts=attempts, failure=failure
                )
            backoff = policy.backoff_for(attempts)
            if backoff > 0:
                time.sleep(backoff)
            continue
        if attempts == 1:
            return result
        return replace(result, attempts=attempts)
