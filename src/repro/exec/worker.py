"""Worker-process bootstrap for the process-pool execution backend.

A process-pool worker cannot share the parent's :class:`~repro.distributed.Cluster`
— sites hold triple-store indexes, planners and locks that must not (and in
part cannot) cross a process boundary.  Instead, each worker *rebuilds* every
site exactly once when it starts: the pool's initializer receives a
:class:`WorkerBootstrap` containing plain-data fragment payloads
(:func:`repro.partition.serialization.fragment_to_payload`) plus the planner
settings, and materializes one private :class:`~repro.distributed.Site` per
fragment in a module-level registry.  Every subsequent
:class:`~repro.exec.tasks.SiteTask` the worker receives resolves its site
from that registry by id — the task itself only ships its explicit payload.

Workers are deliberately dumb: they never see the message bus, the stage
timers or the statistics.  All accounting happens in the parent's
deterministic serial merge, which is what keeps answers, ``shipped_bytes``
and ``messages`` bit-identical across serial, threaded and process execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from ..partition.serialization import fragment_from_payload, fragment_to_payload
from ..planner.plan_cache import DEFAULT_PLAN_CACHE_SIZE

#: This process's bootstrapped sites, keyed by ``site_id``.  ``None`` until
#: :func:`initialize_worker` runs (i.e. in the coordinator process, and in
#: worker processes before their pool initializer fired).
_WORKER_SITES: Optional[Dict[int, object]] = None


@dataclass(frozen=True)
class WorkerBootstrap:
    """Everything a worker needs to rebuild the cluster's sites once.

    The bootstrap is pickled to each worker exactly once (as the pool
    initializer's argument); per-task traffic only carries the much smaller
    stage payloads.
    """

    #: Plain-data fragment payloads, one per site, in fragment-id order.
    fragments: Tuple[Mapping[str, object], ...]
    #: Mirror of ``EngineConfig.use_planner`` for the worker-side stores.
    use_planner: bool = True
    #: Mirror of ``EngineConfig.plan_cache_size`` for the worker-side stores.
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE

    @classmethod
    def from_cluster(
        cls,
        cluster,
        use_planner: bool = True,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> "WorkerBootstrap":
        """Snapshot ``cluster``'s fragments into a picklable bootstrap.

        A cluster with an attached :class:`~repro.persist.ClusterStore`
        ships v3 store references — ``(store_path, fragment_id, delta_seq)``
        triples a few bytes long — and workers load their sites from the
        store file read-only; otherwise the fragments are inlined as v2
        dictionary-encoded payloads.
        """
        sites = sorted(cluster, key=lambda site: site.site_id)
        store = getattr(cluster, "store", None)
        if store is not None:
            from ..partition.serialization import fragment_to_store_payload

            return cls(
                fragments=tuple(
                    fragment_to_store_payload(site.site_id, store) for site in sites
                ),
                use_planner=use_planner,
                plan_cache_size=plan_cache_size,
            )
        return cls(
            fragments=tuple(fragment_to_payload(site.fragment) for site in sites),
            use_planner=use_planner,
            plan_cache_size=plan_cache_size,
        )


def default_site_options() -> Dict[str, object]:
    """The bootstrap's default worker-side knobs, as an options mapping.

    Callers that pass no ``site_options`` (e.g. ``Cluster.graph_statistics``)
    and callers passing a default engine configuration must resolve to the
    same pool binding, so both go through this one source of defaults.
    """
    return {
        "use_planner": WorkerBootstrap.use_planner,
        "plan_cache_size": WorkerBootstrap.plan_cache_size,
    }


def build_site(
    payload: Mapping[str, object],
    *,
    use_planner: bool = True,
    plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
):
    """Materialize one :class:`~repro.distributed.Site` from a fragment payload.

    The single-site bootstrap step, shared by the worker initializer below
    and by ``Cluster.rebuild_site`` — the fault-recovery path that replaces a
    dead site with a fresh one rebuilt from the same plain-data payload a
    process worker would receive.
    """
    from ..distributed.site import Site

    if payload.get("format") == "repro-fragment/3":
        # Store-reference payload: open the store file read-only and let it
        # rebuild the site directly (base edges + bounded delta replay).
        from ..persist import ClusterStore

        with ClusterStore.open(payload["store_path"], read_only=True) as store:
            return store.bootstrap_site(
                int(payload["fragment_id"]),
                use_planner=use_planner,
                plan_cache_size=plan_cache_size,
                up_to=int(payload["delta_seq"]),
            )
    fragment = fragment_from_payload(payload)
    site = Site(fragment.fragment_id, fragment)
    if use_planner:
        site.enable_planner(plan_cache_size)
    else:
        site.disable_planner()
    return site


def build_sites(bootstrap: WorkerBootstrap) -> Dict[int, object]:
    """Materialize one :class:`~repro.distributed.Site` per bootstrap fragment."""
    sites: Dict[int, object] = {}
    for payload in bootstrap.fragments:
        site = build_site(
            payload,
            use_planner=bootstrap.use_planner,
            plan_cache_size=bootstrap.plan_cache_size,
        )
        sites[site.site_id] = site
    return sites


def initialize_worker(bootstrap: WorkerBootstrap) -> None:
    """Pool initializer: rebuild every site in this worker process.

    Passed (by reference) as the ``initializer`` of the backend's
    ``ProcessPoolExecutor``; runs once per worker before any task.
    """
    global _WORKER_SITES
    _WORKER_SITES = build_sites(bootstrap)


def worker_is_initialized() -> bool:
    """``True`` once this process has a bootstrapped site registry."""
    return _WORKER_SITES is not None


def resolve_site(site_id: int):
    """The bootstrapped site for ``site_id`` in this worker process."""
    if _WORKER_SITES is None:
        raise RuntimeError(
            "no bootstrapped sites in this process: site tasks without an explicit "
            "site only run inside a process-pool worker initialized by initialize_worker()"
        )
    try:
        return _WORKER_SITES[site_id]
    except KeyError:
        known = ", ".join(str(sid) for sid in sorted(_WORKER_SITES)) or "none"
        raise LookupError(f"worker has no site {site_id} (bootstrapped: {known})") from None
