"""Execution backends scheduling the engine's per-site work.

The paper's pipeline is embarrassingly parallel between stages' barriers:
candidate compression, partial evaluation and LEC feature extraction all run
*independently at each site* before the coordinator acts.  The seed engine
nevertheless walked the sites in a sequential ``for`` loop; this module
abstracts that loop behind an :class:`ExecutorBackend` so the same engine
code can run the per-site bodies serially (the default, and the reference
behavior), on a thread pool, or on a process pool that sidesteps the GIL for
real multi-core speedup.

Determinism contract
--------------------

Whatever the backend, :meth:`ExecutorBackend.map` returns results in
*submission order* — never completion order — and :func:`run_per_site` /
:meth:`ExecutorBackend.map_site_tasks` always pair sites with results in
ascending ``site_id`` order.  Engines keep all shared-state mutation
(message-bus accounting, statistics accumulation) in the serial merge that
consumes these ordered results, so answers, ``shipped_bytes`` and
``messages`` are bit-identical regardless of the backend or worker count.
The cross-engine equivalence and determinism tests under ``tests/exec/``
enforce exactly this.  See ``docs/execution.md`` for the full contract and
the picklability requirements of process-executed tasks.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple, TypeVar

from .tasks import PAYLOAD_BOUND_STAGES, SiteTask, SiteTaskResult, run_site_task

T = TypeVar("T")
R = TypeVar("R")

#: Backend names accepted by :func:`make_backend` / ``EngineConfig.executor``.
SERIAL = "serial"
THREADS = "threads"
PROCESSES = "processes"
EXECUTOR_CHOICES = (SERIAL, THREADS, PROCESSES)

#: Environment variables resolving the defaults (used by the CI matrix to run
#: the whole suite over the threaded and process paths without touching any
#: test).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
MAX_WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"


def default_max_workers() -> int:
    """Worker count used when none is configured: $REPRO_MAX_WORKERS or CPU count."""
    from_env = os.environ.get(MAX_WORKERS_ENV_VAR)
    if from_env is not None:
        try:
            workers = int(from_env)
        except ValueError:
            raise ValueError(
                f"${MAX_WORKERS_ENV_VAR} must be an integer worker count, got {from_env!r}"
            ) from None
        if workers < 1:
            raise ValueError(f"{MAX_WORKERS_ENV_VAR} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


class ExecutorBackend(ABC):
    """Strategy for running a batch of independent site-local tasks."""

    name: str = "abstract"
    max_workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items``; results come back in submission order.

        The first exception raised by any task propagates to the caller.
        Process-based backends additionally require ``fn`` and every item to
        be picklable (module-level function, plain-data items).
        """

    def map_site_tasks(
        self,
        tasks: Sequence[SiteTask],
        cluster,
        site_options: Optional[Mapping[str, object]] = None,
    ) -> List[SiteTaskResult]:
        """Run a batch of :class:`~repro.exec.tasks.SiteTask` descriptors.

        In-process backends resolve each task's site from the live
        ``cluster``; the process-pool backend overrides this to ship the
        descriptors to workers bootstrapped with the cluster's fragments
        (``site_options`` carries the worker-side knobs, e.g. planner
        settings).  Results come back in submission order either way.

        Tasks run through :func:`~repro.exec.tasks.run_site_task`, so every
        backend shares the fault layer's retry/failure semantics; fault-free
        tasks behave exactly as before.
        """
        del site_options  # only process workers need bootstrap options
        tasks = list(tasks)
        site_of = {site.site_id: site for site in cluster}
        return self.map(lambda task: run_site_task(task, site_of[task.site_id]), tasks)

    def close(self) -> None:
        """Release any worker resources; the backend stays usable afterwards
        (a later :meth:`map` lazily re-acquires them)."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} max_workers={self.max_workers}>"


class SerialBackend(ExecutorBackend):
    """The reference backend: run every task inline, one after another."""

    name = SERIAL
    max_workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutorBackend):
    """Run site-local tasks on a ``concurrent.futures`` thread pool.

    The pool is created lazily on first use and persists across calls (one
    engine runs many stages); ``close()`` tears it down.  Single-item batches
    skip the pool entirely — there is nothing to overlap.
    """

    name = THREADS

    def __init__(self, max_workers: Optional[int] = None) -> None:
        workers = default_max_workers() if max_workers is None else max_workers
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {workers}")
        self.max_workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None
        # Lazy creation is lock-guarded: concurrent queries sharing one
        # session share one backend, and a check-then-create race would leak
        # a second pool.
        self._pool_lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="repro-site"
                )
            return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # Executor.map yields results in submission order (not completion
        # order), which is exactly the determinism contract.
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


class ProcessPoolBackend(ExecutorBackend):
    """Run site-local tasks on a ``concurrent.futures`` process pool.

    This is the backend that delivers true multi-core speedup on a stock
    (GIL) CPython build: each worker process bootstraps its own copy of every
    site exactly once — the pool initializer rebuilds them from picklable
    fragment payloads (:class:`~repro.exec.worker.WorkerBootstrap`) — and
    then executes :class:`~repro.exec.tasks.SiteTask` descriptors, so
    per-task traffic is limited to the explicit stage payloads and results.

    The pool is created lazily on the first multi-task batch and is *bound*
    to the cluster whose fragments it bootstrapped; mapping tasks for a
    different cluster (or different site options) transparently rebuilds the
    pool.  Single-item batches run inline in the coordinator, mirroring
    :class:`ThreadPoolBackend` — there is nothing to overlap.
    """

    name = PROCESSES

    def __init__(self, max_workers: Optional[int] = None) -> None:
        workers = default_max_workers() if max_workers is None else max_workers
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {workers}")
        self.max_workers = workers
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Weak reference to the cluster the current pool was bootstrapped
        #: for, plus the options it was bootstrapped with.  Weak, so a dead
        #: cluster can never alias a new one at the same address.
        self._bound_cluster: Optional["weakref.ref"] = None
        self._bound_options: Optional[Tuple[Tuple[str, object], ...]] = None
        #: The cluster's mutation epoch at bind time: a delta application
        #: invalidates every worker's bootstrapped sites, so the pool rebinds.
        self._bound_epoch: Optional[int] = None
        # Guards pool creation/bind/close as one unit: concurrent queries on
        # one session must agree on a single bootstrapped pool.  Re-entrant
        # because _bind_cluster calls close().
        self._pool_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Pool management
    # ------------------------------------------------------------------
    @staticmethod
    def _main_is_reimportable() -> bool:
        """Whether spawn-style start methods can rebuild ``__main__``.

        ``spawn``/``forkserver`` workers re-import the parent's main module;
        an interactive session, a ``python -`` heredoc or a REPL has no
        importable main, so those methods would crash the pool.
        """
        import os
        import sys

        main = sys.modules.get("__main__")
        if main is None:
            return False
        if getattr(getattr(main, "__spec__", None), "name", None):
            return True
        path = getattr(main, "__file__", None)
        return bool(path) and os.path.exists(path)

    @classmethod
    def _mp_context(cls):
        """The start method for worker processes, chosen per pool creation.

        ``fork`` while the coordinator is single-threaded: cheapest, and the
        only method that works for interactive/stdin-driven parents (the
        spawn-style methods must re-import ``__main__``, which a REPL cannot
        provide).  With live coordinator threads — e.g. a thread-pool
        backend running next to this one — fork could inherit a lock held
        mid-operation (CPython 3.12+ warns about exactly this), so prefer
        ``forkserver`` then: everything shipped to workers is spawn-safe by
        design (module-level handlers, plain-data bootstrap).  A threaded
        *and* non-reimportable coordinator keeps fork — a certain crash is
        worse than a theoretical lock inheritance.
        """
        methods = multiprocessing.get_all_start_methods()
        fork_available = "fork" in methods
        if fork_available and (
            threading.active_count() == 1 or not cls._main_is_reimportable()
        ):
            return multiprocessing.get_context("fork")
        if "forkserver" in methods:
            context = multiprocessing.get_context("forkserver")
            # Preload the worker module (and with it the whole repro stack)
            # into the fork server once, so each worker forks pre-imported
            # instead of re-importing per pool.  A no-op after the server
            # has started.
            context.set_forkserver_preload(["repro.exec.worker"])
            return context
        return multiprocessing.get_context()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """A pool without site bootstrap, for plain :meth:`map` batches."""
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers, mp_context=self._mp_context()
                )
            return self._pool

    def _bind_cluster(self, cluster, site_options: Optional[Mapping[str, object]]) -> None:
        """Make sure the pool's workers are bootstrapped for ``cluster``.

        ``site_options`` are normalized over the bootstrap defaults before
        comparing, so a caller passing no options (``Cluster.graph_statistics``)
        and a caller passing the default options (an engine with a default
        config) share one warm pool instead of rebinding back and forth.
        """
        from .worker import WorkerBootstrap, initialize_worker, default_site_options

        options = tuple(sorted({**default_site_options(), **(site_options or {})}.items()))
        epoch = getattr(cluster, "mutation_epoch", 0)
        with self._pool_lock:
            bound = self._bound_cluster() if self._bound_cluster is not None else None
            if (
                self._pool is not None
                and bound is cluster
                and self._bound_options == options
                and self._bound_epoch == epoch
            ):
                return
            self.close()
            bootstrap = WorkerBootstrap.from_cluster(cluster, **dict(options))
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=self._mp_context(),
                initializer=initialize_worker,
                initargs=(bootstrap,),
            )
            self._bound_cluster = weakref.ref(cluster)
            self._bound_options = options
            self._bound_epoch = epoch

    # ------------------------------------------------------------------
    # ExecutorBackend API
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        return list(self._ensure_pool().map(fn, items))

    def map_site_tasks(
        self,
        tasks: Sequence[SiteTask],
        cluster,
        site_options: Optional[Mapping[str, object]] = None,
    ) -> List[SiteTaskResult]:
        tasks = list(tasks)
        if len(tasks) <= 1 or all(task.stage in PAYLOAD_BOUND_STAGES for task in tasks):
            # Run inline against the coordinator's live sites — same handler,
            # same fragment, no pickling.  Single-item batches have nothing
            # to overlap; payload-bound stages (pure regrouping of large,
            # already-materialized data) cost more to ship than to run.
            site_of = {site.site_id: site for site in cluster}
            return [run_site_task(task, site_of[task.site_id]) for task in tasks]
        self._bind_cluster(cluster, site_options)
        with self._pool_lock:
            pool = self._pool
        assert pool is not None
        return list(pool.map(run_site_task, tasks))

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
            self._bound_cluster = None
            self._bound_options = None
            self._bound_epoch = None
        if pool is not None:
            pool.shutdown(wait=True)

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        # Engines own their backends and close() them, but test code that
        # drops an engine on the floor must not leak worker processes.
        try:
            self.close()
        except Exception:
            pass


def make_backend(
    executor: Optional[str] = None, max_workers: Optional[int] = None
) -> ExecutorBackend:
    """Build a backend from an explicit choice or the environment.

    ``executor=None`` resolves from ``$REPRO_EXECUTOR`` and falls back to
    ``"serial"`` — the reproducible default.  ``max_workers=None`` resolves
    from ``$REPRO_MAX_WORKERS`` and falls back to the CPU count.
    """
    chosen = executor if executor is not None else os.environ.get(EXECUTOR_ENV_VAR, SERIAL)
    chosen = chosen.strip().lower() or SERIAL
    if chosen == SERIAL:
        return SerialBackend()
    if chosen == THREADS:
        return ThreadPoolBackend(max_workers)
    if chosen == PROCESSES:
        return ProcessPoolBackend(max_workers)
    raise ValueError(
        f"unknown executor {chosen!r}; expected one of {', '.join(EXECUTOR_CHOICES)}"
    )


def run_per_site(
    cluster: Iterable, fn: Callable, backend: Optional[ExecutorBackend] = None
) -> List[Tuple[object, object]]:
    """Fan ``fn`` out over the cluster's sites and merge in ``site_id`` order.

    Returns ``[(site, fn(site)), ...]`` sorted by ``site_id`` no matter how
    the backend schedules the work, so callers can fold results into shared
    state deterministically.

    ``fn`` may be any callable (closures included), which is why this helper
    only suits *in-process* backends; work that must be able to run on the
    process pool is expressed as :class:`~repro.exec.tasks.SiteTask`
    descriptors and dispatched through
    :meth:`ExecutorBackend.map_site_tasks` instead.
    """
    sites = sorted(cluster, key=lambda site: site.site_id)
    results = (backend or SerialBackend()).map(fn, sites)
    return list(zip(sites, results))
