"""Execution backends scheduling the engine's per-site work.

The paper's pipeline is embarrassingly parallel between stages' barriers:
candidate compression, partial evaluation and LEC feature extraction all run
*independently at each site* before the coordinator acts.  The seed engine
nevertheless walked the sites in a sequential ``for`` loop; this module
abstracts that loop behind an :class:`ExecutorBackend` so the same engine
code can run the per-site bodies serially (the default, and the reference
behavior) or on a thread pool.

Determinism contract
--------------------

Whatever the backend, :meth:`ExecutorBackend.map` returns results in
*submission order* — never completion order — and :func:`run_per_site`
always pairs sites with results in ascending ``site_id`` order.  Engines
keep all shared-state mutation (message-bus accounting, statistics
accumulation) in the serial merge that consumes these ordered results, so
answers, ``shipped_bytes`` and ``messages`` are bit-identical regardless of
the backend or worker count.  The cross-engine equivalence and determinism
tests under ``tests/exec/`` enforce exactly this.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Backend names accepted by :func:`make_backend` / ``EngineConfig.executor``.
SERIAL = "serial"
THREADS = "threads"
EXECUTOR_CHOICES = (SERIAL, THREADS)

#: Environment variables resolving the defaults (used by the CI matrix to run
#: the whole suite over the threaded path without touching any test).
EXECUTOR_ENV_VAR = "REPRO_EXECUTOR"
MAX_WORKERS_ENV_VAR = "REPRO_MAX_WORKERS"


def default_max_workers() -> int:
    """Worker count used when none is configured: $REPRO_MAX_WORKERS or CPU count."""
    from_env = os.environ.get(MAX_WORKERS_ENV_VAR)
    if from_env is not None:
        workers = int(from_env)
        if workers < 1:
            raise ValueError(f"{MAX_WORKERS_ENV_VAR} must be >= 1, got {workers}")
        return workers
    return os.cpu_count() or 1


class ExecutorBackend(ABC):
    """Strategy for running a batch of independent site-local tasks."""

    name: str = "abstract"
    max_workers: int = 1

    @abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Run ``fn`` over ``items``; results come back in submission order.

        The first exception raised by any task propagates to the caller.
        """

    def close(self) -> None:
        """Release any worker resources; the backend stays usable afterwards
        (a later :meth:`map` lazily re-acquires them)."""

    def __enter__(self) -> "ExecutorBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{type(self).__name__} max_workers={self.max_workers}>"


class SerialBackend(ExecutorBackend):
    """The reference backend: run every task inline, one after another."""

    name = SERIAL
    max_workers = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutorBackend):
    """Run site-local tasks on a ``concurrent.futures`` thread pool.

    The pool is created lazily on first use and persists across calls (one
    engine runs many stages); ``close()`` tears it down.  Single-item batches
    skip the pool entirely — there is nothing to overlap.
    """

    name = THREADS

    def __init__(self, max_workers: Optional[int] = None) -> None:
        workers = default_max_workers() if max_workers is None else max_workers
        if workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {workers}")
        self.max_workers = workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers, thread_name_prefix="repro-site"
            )
        return self._pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if len(items) <= 1:
            return [fn(item) for item in items]
        # Executor.map yields results in submission order (not completion
        # order), which is exactly the determinism contract.
        return list(self._ensure_pool().map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_backend(
    executor: Optional[str] = None, max_workers: Optional[int] = None
) -> ExecutorBackend:
    """Build a backend from an explicit choice or the environment.

    ``executor=None`` resolves from ``$REPRO_EXECUTOR`` and falls back to
    ``"serial"`` — the reproducible default.  ``max_workers=None`` resolves
    from ``$REPRO_MAX_WORKERS`` and falls back to the CPU count.
    """
    chosen = executor if executor is not None else os.environ.get(EXECUTOR_ENV_VAR, SERIAL)
    chosen = chosen.strip().lower() or SERIAL
    if chosen == SERIAL:
        return SerialBackend()
    if chosen == THREADS:
        return ThreadPoolBackend(max_workers)
    raise ValueError(
        f"unknown executor {chosen!r}; expected one of {', '.join(EXECUTOR_CHOICES)}"
    )


def run_per_site(
    cluster: Iterable, fn: Callable, backend: Optional[ExecutorBackend] = None
) -> List[Tuple[object, object]]:
    """Fan ``fn`` out over the cluster's sites and merge in ``site_id`` order.

    Returns ``[(site, fn(site)), ...]`` sorted by ``site_id`` no matter how
    the backend schedules the work, so callers can fold results into shared
    state deterministically.
    """
    sites = sorted(cluster, key=lambda site: site.site_id)
    results = (backend or SerialBackend()).map(fn, sites)
    return list(zip(sites, results))
