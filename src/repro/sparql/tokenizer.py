"""Tokenizer for the SPARQL BGP subset supported by this reproduction.

The parser only needs SELECT queries whose WHERE clause is a basic graph
pattern (the paper restricts itself to BGP queries), so the token set is
small: keywords, IRIs, prefixed names, variables, literals and punctuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List


class TokenType(Enum):
    """Lexical classes produced by :func:`tokenize`."""

    KEYWORD = auto()
    IRI = auto()
    PREFIXED_NAME = auto()
    VARIABLE = auto()
    LITERAL = auto()
    A = auto()  # the `a` shorthand for rdf:type
    DOT = auto()
    SEMICOLON = auto()
    COMMA = auto()
    LBRACE = auto()
    RBRACE = auto()
    STAR = auto()
    EOF = auto()


#: Keywords recognised case-insensitively.
KEYWORDS = {"select", "distinct", "where", "prefix", "base", "ask", "limit", "offset"}


@dataclass(frozen=True, slots=True)
class Token:
    """A single token with its position for error reporting."""

    type: TokenType
    value: str
    position: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Token({self.type.name}, {self.value!r})"


class SparqlSyntaxError(ValueError):
    """Raised by the tokenizer or parser on malformed query text."""

    def __init__(self, message: str, position: int = -1) -> None:
        suffix = f" at offset {position}" if position >= 0 else ""
        super().__init__(f"{message}{suffix}")
        self.position = position


_PUNCTUATION = {
    ".": TokenType.DOT,
    ";": TokenType.SEMICOLON,
    ",": TokenType.COMMA,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "*": TokenType.STAR,
}

_NAME_CHARS = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-.")


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` into a list ending with an EOF token."""
    return list(_token_stream(text))


def _token_stream(text: str) -> Iterator[Token]:
    i = 0
    length = len(text)
    while i < length:
        char = text[i]
        if char in " \t\r\n":
            i += 1
            continue
        if char == "#":
            while i < length and text[i] != "\n":
                i += 1
            continue
        if char in _PUNCTUATION:
            yield Token(_PUNCTUATION[char], char, i)
            i += 1
            continue
        if char == "<":
            end = text.find(">", i)
            if end < 0:
                raise SparqlSyntaxError("unterminated IRI", i)
            yield Token(TokenType.IRI, text[i + 1 : end], i)
            i = end + 1
            continue
        if char in "?$":
            start = i + 1
            i = start
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            if i == start:
                raise SparqlSyntaxError("empty variable name", start)
            yield Token(TokenType.VARIABLE, text[start:i], start)
            continue
        if char in "\"'":
            token, i = _read_literal(text, i)
            yield token
            continue
        if char.isdigit() or (char == "-" and i + 1 < length and text[i + 1].isdigit()):
            start = i
            i += 1
            while i < length and (text[i].isdigit() or text[i] == "."):
                i += 1
            yield Token(TokenType.LITERAL, text[start:i], start)
            continue
        if char.isalpha() or char == "_" or char == ":":
            token, i = _read_word(text, i)
            yield token
            continue
        raise SparqlSyntaxError(f"unexpected character {char!r}", i)
    yield Token(TokenType.EOF, "", length)


def _read_literal(text: str, start: int) -> tuple[Token, int]:
    quote = text[start]
    i = start + 1
    value_chars: List[str] = []
    while i < len(text):
        char = text[i]
        if char == "\\" and i + 1 < len(text):
            value_chars.append(text[i : i + 2])
            i += 2
            continue
        if char == quote:
            break
        value_chars.append(char)
        i += 1
    else:
        raise SparqlSyntaxError("unterminated literal", start)
    i += 1  # closing quote
    suffix = ""
    if i < len(text) and text[i] == "@":
        j = i + 1
        while j < len(text) and (text[j].isalnum() or text[j] == "-"):
            j += 1
        suffix = text[i:j]
        i = j
    elif text.startswith("^^", i):
        j = i + 2
        if j < len(text) and text[j] == "<":
            end = text.find(">", j)
            if end < 0:
                raise SparqlSyntaxError("unterminated datatype IRI", j)
            suffix = text[i : end + 1]
            i = end + 1
        else:
            while j < len(text) and (text[j] in _NAME_CHARS or text[j] == ":"):
                j += 1
            suffix = text[i:j]
            i = j
    raw = quote + "".join(value_chars) + quote + suffix
    return Token(TokenType.LITERAL, raw, start), i


def _read_word(text: str, start: int) -> tuple[Token, int]:
    i = start
    while i < len(text) and (text[i] in _NAME_CHARS or text[i] == ":"):
        i += 1
    word = text[start:i]
    lowered = word.lower()
    if word == "a":
        return Token(TokenType.A, word, start), i
    if lowered in KEYWORDS:
        return Token(TokenType.KEYWORD, lowered, start), i
    if ":" in word:
        return Token(TokenType.PREFIXED_NAME, word, start), i
    raise SparqlSyntaxError(f"unrecognised token {word!r}", start)
