"""SPARQL BGP front end: tokenizer, parser, algebra, query graph, bindings."""

from .algebra import BasicGraphPattern, SelectQuery, bgp_from_patterns
from .bindings import Binding, ResultSet
from .parser import format_query, parse_bgp, parse_query
from .query_graph import QueryEdge, QueryGraph, traversal_order
from .tokenizer import SparqlSyntaxError, Token, TokenType, tokenize

__all__ = [
    "BasicGraphPattern",
    "Binding",
    "QueryEdge",
    "QueryGraph",
    "ResultSet",
    "SelectQuery",
    "SparqlSyntaxError",
    "Token",
    "TokenType",
    "bgp_from_patterns",
    "format_query",
    "parse_bgp",
    "parse_query",
    "tokenize",
    "traversal_order",
]
