"""Solution mappings (bindings) and result sets.

A :class:`Binding` maps query variables to RDF terms; a :class:`ResultSet`
is an ordered collection of bindings with helpers for projection, dedup and
comparison.  All distributed engines and baselines in this repository return
``ResultSet`` objects, so the integration tests can compare them directly
against the centralized ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..rdf.terms import Node, Term, Variable


@dataclass(frozen=True)
class Binding:
    """An immutable solution mapping from variables to concrete terms."""

    _items: FrozenSet[Tuple[Variable, Node]]

    def __init__(self, mapping: Mapping[Variable, Node] | Iterable[Tuple[Variable, Node]] = ()) -> None:
        if isinstance(mapping, Mapping):
            items = frozenset(mapping.items())
        else:
            items = frozenset(mapping)
        object.__setattr__(self, "_items", items)

    def as_dict(self) -> Dict[Variable, Node]:
        return dict(self._items)

    def get(self, variable: Variable, default: Optional[Node] = None) -> Optional[Node]:
        for var, value in self._items:
            if var == variable:
                return value
        return default

    def __getitem__(self, variable: Variable) -> Node:
        value = self.get(variable)
        if value is None:
            raise KeyError(variable)
        return value

    def __contains__(self, variable: Variable) -> bool:
        return self.get(variable) is not None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Variable]:
        return iter(var for var, _ in self._items)

    @property
    def variables(self) -> Set[Variable]:
        return {var for var, _ in self._items}

    def project(self, variables: Sequence[Variable]) -> "Binding":
        """Keep only the given variables (missing ones are dropped)."""
        wanted = set(variables)
        return Binding({var: value for var, value in self._items if var in wanted})

    def compatible_with(self, other: "Binding") -> bool:
        """SPARQL compatibility: shared variables must have equal values."""
        mine = self.as_dict()
        for var, value in other._items:
            if var in mine and mine[var] != value:
                return False
        return True

    def merge(self, other: "Binding") -> "Binding":
        """Union of two compatible bindings."""
        merged = self.as_dict()
        merged.update(other.as_dict())
        return Binding(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        inner = ", ".join(f"{var.n3()}={value.n3()}" for var, value in sorted(self._items, key=lambda i: i[0].name))
        return f"Binding({inner})"


class ResultSet:
    """An ordered, comparable collection of :class:`Binding` objects."""

    def __init__(self, bindings: Iterable[Binding] = (), variables: Sequence[Variable] = ()) -> None:
        self._bindings: List[Binding] = list(bindings)
        self._variables: Tuple[Variable, ...] = tuple(variables)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        if self._variables:
            return self._variables
        seen: List[Variable] = []
        for binding in self._bindings:
            for variable in binding.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    def add(self, binding: Binding) -> None:
        self._bindings.append(binding)

    def extend(self, bindings: Iterable[Binding]) -> None:
        self._bindings.extend(bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __iter__(self) -> Iterator[Binding]:
        return iter(self._bindings)

    def __bool__(self) -> bool:
        return bool(self._bindings)

    def __contains__(self, binding: Binding) -> bool:
        return binding in self._bindings

    def project(self, variables: Sequence[Variable], distinct: bool = False) -> "ResultSet":
        projected = [binding.project(variables) for binding in self._bindings]
        if distinct:
            seen: Set[Binding] = set()
            unique: List[Binding] = []
            for binding in projected:
                if binding not in seen:
                    seen.add(binding)
                    unique.append(binding)
            projected = unique
        return ResultSet(projected, variables)

    def distinct(self) -> "ResultSet":
        return self.project(self.variables, distinct=True)

    def limit(self, count: Optional[int]) -> "ResultSet":
        if count is None:
            return self
        return ResultSet(self._bindings[:count], self._variables)

    def as_set(self) -> FrozenSet[Binding]:
        """Order-insensitive view used for equality checks in tests."""
        return frozenset(self._bindings)

    def same_solutions(self, other: "ResultSet") -> bool:
        """Compare two result sets as sets of solution mappings."""
        return self.as_set() == other.as_set()

    def to_table(self) -> List[Dict[str, str]]:
        """Render bindings as dictionaries of variable name → N3 term text."""
        rows = []
        for binding in self._bindings:
            rows.append({var.name: binding[var].n3() for var in binding.variables})
        return rows

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<ResultSet solutions={len(self)} vars={[v.name for v in self.variables]}>"
