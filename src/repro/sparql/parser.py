"""Recursive-descent parser for the SPARQL BGP subset.

Grammar (informal)::

    query      := prologue (select | ask)
    prologue   := (PREFIX pname: <iri>)*
    select     := SELECT [DISTINCT] (var+ | *) WHERE? group [LIMIT n]
    ask        := ASK group
    group      := '{' triples '}'
    triples    := triple ( '.' triple )* '.'?
    triple     := term verb object (';' verb object)* (',' object)*

which covers every benchmark query used in the paper's evaluation
(BGP-only, no FILTER/OPTIONAL/UNION).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..rdf.namespaces import NamespaceManager, RDF_TYPE
from ..rdf.terms import IRI, Literal, PatternTerm, Variable
from ..rdf.triples import TriplePattern
from .algebra import BasicGraphPattern, SelectQuery
from .tokenizer import SparqlSyntaxError, Token, TokenType, tokenize


def parse_query(text: str, namespaces: Optional[NamespaceManager] = None) -> SelectQuery:
    """Parse ``text`` into a :class:`SelectQuery`.

    Parameters
    ----------
    text:
        The SPARQL query string.
    namespaces:
        Optional namespace manager providing pre-declared prefixes (query
        PREFIX declarations are added on top of it).
    """
    return _Parser(text, namespaces).parse()


class _Parser:
    def __init__(self, text: str, namespaces: Optional[NamespaceManager]) -> None:
        self._tokens = tokenize(text)
        self._index = 0
        self._namespaces = NamespaceManager()
        if namespaces is not None:
            for prefix, base in namespaces:
                self._namespaces.bind(prefix, base)
        self._declared: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, token_type: TokenType, value: Optional[str] = None) -> Token:
        token = self._peek()
        if token.type is not token_type or (value is not None and token.value != value):
            expected = value or token_type.name
            raise SparqlSyntaxError(f"expected {expected}, found {token.value!r}", token.position)
        return self._advance()

    def _accept_keyword(self, keyword: str) -> bool:
        token = self._peek()
        if token.type is TokenType.KEYWORD and token.value == keyword:
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------
    # Grammar
    # ------------------------------------------------------------------
    def parse(self) -> SelectQuery:
        self._parse_prologue()
        token = self._peek()
        if token.type is not TokenType.KEYWORD:
            raise SparqlSyntaxError("expected SELECT or ASK", token.position)
        if token.value == "select":
            query = self._parse_select()
        elif token.value == "ask":
            query = self._parse_ask()
        else:
            raise SparqlSyntaxError(f"unsupported query form {token.value!r}", token.position)
        self._expect(TokenType.EOF)
        return query

    def _parse_prologue(self) -> None:
        while self._accept_keyword("prefix"):
            name_token = self._expect(TokenType.PREFIXED_NAME)
            prefix = name_token.value.rstrip(":")
            if name_token.value.count(":") != 1 or not name_token.value.endswith(":"):
                raise SparqlSyntaxError("malformed PREFIX declaration", name_token.position)
            iri_token = self._expect(TokenType.IRI)
            self._namespaces.bind(prefix, iri_token.value)
            self._declared[prefix] = iri_token.value

    def _parse_select(self) -> SelectQuery:
        self._expect(TokenType.KEYWORD, "select")
        distinct = self._accept_keyword("distinct")
        projection: List[Variable] = []
        if self._peek().type is TokenType.STAR:
            self._advance()
        else:
            while self._peek().type is TokenType.VARIABLE:
                projection.append(Variable(self._advance().value))
            if not projection:
                raise SparqlSyntaxError("SELECT needs variables or *", self._peek().position)
        self._accept_keyword("where")
        patterns = self._parse_group()
        limit = self._parse_limit()
        return SelectQuery(
            bgp=BasicGraphPattern(patterns),
            projection=tuple(projection),
            distinct=distinct,
            limit=limit,
            prefixes=dict(self._declared),
        )

    def _parse_ask(self) -> SelectQuery:
        self._expect(TokenType.KEYWORD, "ask")
        patterns = self._parse_group()
        return SelectQuery(
            bgp=BasicGraphPattern(patterns),
            projection=(),
            is_ask=True,
            prefixes=dict(self._declared),
        )

    def _parse_limit(self) -> Optional[int]:
        if self._accept_keyword("limit"):
            token = self._expect(TokenType.LITERAL)
            try:
                return int(token.value)
            except ValueError as exc:
                raise SparqlSyntaxError("LIMIT expects an integer", token.position) from exc
        return None

    def _parse_group(self) -> List[TriplePattern]:
        self._expect(TokenType.LBRACE)
        patterns: List[TriplePattern] = []
        while self._peek().type is not TokenType.RBRACE:
            patterns.extend(self._parse_triples_same_subject())
            if self._peek().type is TokenType.DOT:
                self._advance()
        self._expect(TokenType.RBRACE)
        if not patterns:
            raise SparqlSyntaxError("empty basic graph pattern", self._peek().position)
        return patterns

    def _parse_triples_same_subject(self) -> List[TriplePattern]:
        subject = self._parse_term()
        patterns: List[TriplePattern] = []
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term()
                patterns.append(TriplePattern(subject, predicate, obj))
                if self._peek().type is TokenType.COMMA:
                    self._advance()
                    continue
                break
            if self._peek().type is TokenType.SEMICOLON:
                self._advance()
                # Allow a dangling ';' before '.' or '}' as SPARQL does.
                if self._peek().type in (TokenType.DOT, TokenType.RBRACE):
                    break
                continue
            break
        return patterns

    def _parse_verb(self) -> PatternTerm:
        token = self._peek()
        if token.type is TokenType.A:
            self._advance()
            return RDF_TYPE
        return self._parse_term(allow_literal=False)

    def _parse_term(self, allow_literal: bool = True) -> PatternTerm:
        token = self._advance()
        if token.type is TokenType.IRI:
            return IRI(token.value)
        if token.type is TokenType.PREFIXED_NAME:
            try:
                return self._namespaces.resolve(token.value)
            except KeyError as exc:
                raise SparqlSyntaxError(str(exc), token.position) from exc
        if token.type is TokenType.VARIABLE:
            return Variable(token.value)
        if token.type is TokenType.LITERAL and allow_literal:
            return self._parse_literal_token(token)
        raise SparqlSyntaxError(f"unexpected token {token.value!r}", token.position)

    def _parse_literal_token(self, token: Token) -> Literal:
        raw = token.value
        if raw and raw[0] not in "\"'":
            # Numeric literal.
            return Literal(raw)
        quote = raw[0]
        closing = raw.rfind(quote)
        lexical = raw[1:closing].replace('\\"', '"').replace("\\'", "'")
        suffix = raw[closing + 1 :]
        if suffix.startswith("@"):
            return Literal(lexical, language=suffix[1:])
        if suffix.startswith("^^<") and suffix.endswith(">"):
            return Literal(lexical, datatype=IRI(suffix[3:-1]))
        if suffix.startswith("^^"):
            return Literal(lexical, datatype=self._namespaces.resolve(suffix[2:]))
        return Literal(lexical)


def parse_bgp(text: str, namespaces: Optional[NamespaceManager] = None) -> BasicGraphPattern:
    """Parse only a group graph pattern (``{ ... }`` or bare triples)."""
    stripped = text.strip()
    if not stripped.startswith("{"):
        stripped = "{" + stripped + "}"
    query = parse_query(f"SELECT * WHERE {stripped}", namespaces)
    return query.bgp


def format_query(query: SelectQuery, namespaces: Optional[NamespaceManager] = None) -> str:
    """Pretty-print a query back to SPARQL text (used by examples and logs)."""
    manager = namespaces or NamespaceManager.with_defaults()
    for prefix, base in query.prefixes.items():
        manager.bind(prefix, base)
    lines: List[str] = []
    for prefix, base in sorted(query.prefixes.items()):
        lines.append(f"PREFIX {prefix}: <{base}>")
    head: Tuple[str, ...]
    if query.is_ask:
        lines.append("ASK {")
    else:
        head = tuple(variable.n3() for variable in query.projection) or ("*",)
        distinct = "DISTINCT " if query.distinct else ""
        lines.append(f"SELECT {distinct}{' '.join(head)} WHERE {{")
    for pattern in query.bgp:
        parts = []
        for term in pattern:
            if isinstance(term, IRI):
                parts.append(manager.shrink(term))
            else:
                parts.append(term.n3())
        lines.append("  " + " ".join(parts) + " .")
    lines.append("}")
    if query.limit is not None:
        lines.append(f"LIMIT {query.limit}")
    return "\n".join(lines)
