"""Query graph representation (Definition 2 of the paper).

A SPARQL BGP query is viewed as a graph whose vertices are the subject and
object terms of the triple patterns (constants or variables) and whose edges
are the triple patterns themselves, labelled by the predicate (a constant
property or a variable).

The query graph also fixes a *vertex order*: the LECSign bitstring of a LEC
feature (Definition 8) has one bit per query vertex, so every component that
manipulates LEC features needs a stable index for each query vertex.  The
order is the first-appearance order of terms in the BGP, which matches the
serialization-vector convention of the paper's examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import IRI, PatternTerm, Variable
from ..rdf.triples import TriplePattern
from .algebra import BasicGraphPattern, SelectQuery


@dataclass(frozen=True, slots=True)
class QueryEdge:
    """A directed, labelled edge of the query graph.

    ``index`` is the position of the originating triple pattern in the BGP,
    which keeps parallel edges (a multiset of edges, per Definition 2)
    distinguishable.
    """

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm
    index: int

    @property
    def pattern(self) -> TriplePattern:
        return TriplePattern(self.subject, self.predicate, self.object)

    @property
    def endpoints(self) -> Tuple[PatternTerm, PatternTerm]:
        return (self.subject, self.object)

    def other_endpoint(self, vertex: PatternTerm) -> PatternTerm:
        if vertex == self.subject:
            return self.object
        if vertex == self.object:
            return self.subject
        raise ValueError(f"{vertex!r} is not an endpoint of this edge")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"QueryEdge#{self.index}({self.subject.n3()} {self.predicate.n3()} {self.object.n3()})"


class QueryGraph:
    """The graph view of a BGP query with a stable vertex order."""

    def __init__(self, bgp: BasicGraphPattern) -> None:
        self._bgp = bgp
        self._vertices: List[PatternTerm] = []
        self._vertex_index: Dict[PatternTerm, int] = {}
        self._edges: List[QueryEdge] = []
        self._adjacency: Dict[PatternTerm, List[QueryEdge]] = {}
        for position, pattern in enumerate(bgp):
            edge = QueryEdge(pattern.subject, pattern.predicate, pattern.object, position)
            self._edges.append(edge)
            for term in (pattern.subject, pattern.object):
                if term not in self._vertex_index:
                    self._vertex_index[term] = len(self._vertices)
                    self._vertices.append(term)
                    self._adjacency[term] = []
            self._adjacency[pattern.subject].append(edge)
            if pattern.object != pattern.subject:
                self._adjacency[pattern.object].append(edge)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_query(cls, query: SelectQuery) -> "QueryGraph":
        return cls(query.bgp)

    @classmethod
    def from_patterns(cls, patterns: Sequence[TriplePattern]) -> "QueryGraph":
        return cls(BasicGraphPattern(patterns))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def bgp(self) -> BasicGraphPattern:
        return self._bgp

    @property
    def vertices(self) -> Tuple[PatternTerm, ...]:
        """Query vertices in their stable (first-appearance) order."""
        return tuple(self._vertices)

    @property
    def edges(self) -> Tuple[QueryEdge, ...]:
        return tuple(self._edges)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Variables appearing as vertices, in vertex order."""
        return tuple(v for v in self._vertices if isinstance(v, Variable))

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def vertex_index(self, vertex: PatternTerm) -> int:
        """The stable index of ``vertex`` (used for LECSign bit positions)."""
        return self._vertex_index[vertex]

    def vertex_at(self, index: int) -> PatternTerm:
        return self._vertices[index]

    def __contains__(self, vertex: PatternTerm) -> bool:
        return vertex in self._vertex_index

    def edges_of(self, vertex: PatternTerm) -> Tuple[QueryEdge, ...]:
        """All edges adjacent to ``vertex`` (in either direction)."""
        return tuple(self._adjacency.get(vertex, ()))

    def neighbours(self, vertex: PatternTerm) -> Set[PatternTerm]:
        """All vertices adjacent to ``vertex``."""
        found: Set[PatternTerm] = set()
        for edge in self._adjacency.get(vertex, ()):
            found.add(edge.other_endpoint(vertex) if vertex in edge.endpoints else vertex)
        found.discard(vertex)
        return found

    def edge_at(self, index: int) -> QueryEdge:
        return self._edges[index]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_connected(self) -> bool:
        if not self._vertices:
            return True
        seen = {self._vertices[0]}
        frontier = [self._vertices[0]]
        while frontier:
            vertex = frontier.pop()
            for neighbour in self.neighbours(vertex):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return len(seen) == len(self._vertices)

    def is_star(self) -> bool:
        """``True`` when the query is a star: one centre vertex shared by all edges.

        The paper's evaluation divides benchmark queries into *star* queries
        (answerable inside a single fragment because crossing edges are
        replicated) and *other shapes*.
        """
        if self.num_edges <= 1:
            return True
        for centre in self._vertices:
            if all(centre in edge.endpoints for edge in self._edges):
                return True
        return False

    def degree(self, vertex: PatternTerm) -> int:
        return len(self._adjacency.get(vertex, ()))

    def classify_shape(self) -> str:
        """Classify the query shape: ``star``, ``path``, ``tree``, ``cycle`` or ``complex``."""
        if self.is_star():
            return "star"
        degrees = [self.degree(v) for v in self._vertices]
        if self.num_edges == self.num_vertices - 1:
            if all(d <= 2 for d in degrees):
                return "path"
            return "tree"
        if self.num_edges == self.num_vertices and all(d == 2 for d in degrees):
            return "cycle"
        return "complex"

    def weakly_connected_via(self, source: PatternTerm, target: PatternTerm, allowed: Set[PatternTerm]) -> bool:
        """Is there a path from ``source`` to ``target`` using only ``allowed`` vertices?

        Implements the reachability test needed by condition 6 of Definition 5
        (a path whose every vertex maps to an internal vertex).
        """
        if source not in allowed or target not in allowed:
            return False
        if source == target:
            return True
        seen = {source}
        frontier = [source]
        while frontier:
            vertex = frontier.pop()
            for neighbour in self.neighbours(vertex):
                if neighbour == target:
                    return True
                if neighbour in allowed and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return False

    def induced_edge_set(self, vertices: Set[PatternTerm]) -> FrozenSet[int]:
        """Indices of edges whose both endpoints are in ``vertices``."""
        return frozenset(
            edge.index for edge in self._edges if edge.subject in vertices and edge.object in vertices
        )

    def constant_vertices(self) -> Tuple[PatternTerm, ...]:
        """Query vertices that are constants (IRIs or literals)."""
        return tuple(v for v in self._vertices if not isinstance(v, Variable))

    def has_selective_pattern(self) -> bool:
        """Whether any triple pattern has a constant subject or object.

        The paper calls such patterns *selective triple patterns*; queries
        with them evaluate much faster because candidate sets shrink early.
        """
        return any(
            not isinstance(edge.subject, Variable) or not isinstance(edge.object, Variable)
            for edge in self._edges
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<QueryGraph |V|={self.num_vertices} |E|={self.num_edges} shape={self.classify_shape()}>"


def traversal_order(graph: QueryGraph, start: Optional[PatternTerm] = None) -> List[PatternTerm]:
    """A connected traversal order of the query vertices.

    The matcher assigns query vertices in this order so that each newly
    assigned vertex (after the first) is adjacent to an already-assigned one,
    which keeps intermediate result sizes small.  Constant vertices and
    vertices with many incident edges are visited first.
    """
    if graph.num_vertices == 0:
        return []

    def priority(vertex: PatternTerm) -> Tuple[int, int]:
        is_constant = 0 if not isinstance(vertex, Variable) else 1
        return (is_constant, -graph.degree(vertex))

    vertices = list(graph.vertices)
    if start is None:
        start = min(vertices, key=priority)
    order = [start]
    placed = {start}
    while len(order) < len(vertices):
        frontier = [v for v in vertices if v not in placed and any(n in placed for n in graph.neighbours(v))]
        if not frontier:
            # Disconnected query graph: start a new component.
            frontier = [v for v in vertices if v not in placed]
        next_vertex = min(frontier, key=priority)
        order.append(next_vertex)
        placed.add(next_vertex)
    return order
