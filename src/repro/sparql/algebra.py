"""SPARQL algebra objects: basic graph patterns and SELECT queries.

The paper only deals with BGP queries (Definition 2); the algebra therefore
consists of a list of triple patterns plus a projection.  A query is
connected if its query graph is connected — disconnected queries are handled
per the paper by evaluating each connected component separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..rdf.terms import PatternTerm, Variable
from ..rdf.triples import TriplePattern


@dataclass(frozen=True)
class BasicGraphPattern:
    """An ordered multiset of triple patterns."""

    patterns: Tuple[TriplePattern, ...]

    def __init__(self, patterns: Iterable[TriplePattern]) -> None:
        object.__setattr__(self, "patterns", tuple(patterns))

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.patterns)

    def __len__(self) -> int:
        return len(self.patterns)

    def __getitem__(self, index: int) -> TriplePattern:
        return self.patterns[index]

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All distinct variables, in first-appearance order."""
        seen: List[Variable] = []
        for pattern in self.patterns:
            for variable in pattern.variables:
                if variable not in seen:
                    seen.append(variable)
        return tuple(seen)

    @property
    def terms(self) -> Set[PatternTerm]:
        """All distinct subject/object terms (the query-graph vertices)."""
        found: Set[PatternTerm] = set()
        for pattern in self.patterns:
            found.add(pattern.subject)
            found.add(pattern.object)
        return found

    def connected_components(self) -> List["BasicGraphPattern"]:
        """Split the BGP into connected components of its query graph.

        Two triple patterns are connected when they share a subject/object
        term (joins through predicates are not considered graph connections,
        matching the query-graph view of Definition 2).
        """
        unassigned = list(self.patterns)
        components: List[List[TriplePattern]] = []
        while unassigned:
            component = [unassigned.pop(0)]
            terms = {component[0].subject, component[0].object}
            changed = True
            while changed:
                changed = False
                for pattern in list(unassigned):
                    if pattern.subject in terms or pattern.object in terms:
                        component.append(pattern)
                        terms.add(pattern.subject)
                        terms.add(pattern.object)
                        unassigned.remove(pattern)
                        changed = True
            components.append(component)
        return [BasicGraphPattern(component) for component in components]

    @property
    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1


@dataclass(frozen=True)
class SelectQuery:
    """A parsed SPARQL SELECT (or ASK) query over a single BGP.

    Attributes
    ----------
    bgp:
        The WHERE clause's basic graph pattern.
    projection:
        Variables listed in the SELECT clause; empty tuple means ``SELECT *``.
    distinct:
        Whether DISTINCT was specified.
    is_ask:
        ``True`` for ASK queries (projection is ignored).
    limit:
        Optional LIMIT value.
    """

    bgp: BasicGraphPattern
    projection: Tuple[Variable, ...] = ()
    distinct: bool = False
    is_ask: bool = False
    limit: Optional[int] = None
    prefixes: Dict[str, str] = field(default_factory=dict)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        return self.bgp.variables

    @property
    def effective_projection(self) -> Tuple[Variable, ...]:
        """The projection actually applied (all variables for ``SELECT *``)."""
        return self.projection if self.projection else self.variables

    def __iter__(self) -> Iterator[TriplePattern]:
        return iter(self.bgp)

    def __len__(self) -> int:
        return len(self.bgp)


def bgp_from_patterns(patterns: Sequence[TriplePattern]) -> BasicGraphPattern:
    """Convenience constructor used by programmatic query builders and tests."""
    return BasicGraphPattern(patterns)
