"""Opt-in per-stage ``cProfile`` capture.

A :class:`StageProfiler` wraps coordinator-side stage execution in a
``cProfile.Profile`` when — and only when — profiling was requested, either
explicitly (``repro.open(..., profile=True)``) or through the
``REPRO_PROFILE`` environment variable (any value other than ``""``/``0``/
``false``/``off`` enables it).  A disabled profiler's :meth:`capture` is a
no-op context manager, so the default path pays a single truthiness check.

Profiles accumulate per stage name across queries; :meth:`report` renders
one stage's aggregate as ``pstats`` text sorted by cumulative time, and
:meth:`reports` renders all of them.  Only coordinator-process work is
captured: site tasks dispatched to a process pool run in worker processes
that a coordinator profiler cannot see (documented limitation, matching the
tracing layer's clock-rebasing caveat in ``docs/observability.md``).
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

#: Environment variable that force-enables profiling for a process.
PROFILE_ENV = "REPRO_PROFILE"

_FALSEY = {"", "0", "false", "no", "off"}


def _env_enabled() -> bool:
    return os.environ.get(PROFILE_ENV, "").strip().lower() not in _FALSEY


class StageProfiler:
    """Collects per-stage ``cProfile`` data when enabled, else does nothing."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._profiles: Dict[str, cProfile.Profile] = {}

    @classmethod
    def from_env(cls, explicit: Optional[bool] = None) -> Optional["StageProfiler"]:
        """Build a profiler from an explicit flag or ``REPRO_PROFILE``.

        Returns ``None`` when profiling is off either way, so callers can
        keep a plain ``profiler is not None`` fast path.
        """
        if explicit is None:
            explicit = _env_enabled()
        return cls(enabled=True) if explicit else None

    @contextmanager
    def capture(self, stage: str) -> Iterator[None]:
        """Profile the enclosed block under ``stage`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        with self._lock:
            profile = self._profiles.get(stage)
            if profile is None:
                profile = cProfile.Profile()
                self._profiles[stage] = profile
        profile.enable()
        try:
            yield
        finally:
            profile.disable()

    @property
    def stages(self) -> List[str]:
        """Stage names with captured data, in first-capture order."""
        with self._lock:
            return list(self._profiles)

    def report(self, stage: str, limit: int = 20) -> str:
        """One stage's aggregate profile as pstats text (cumulative sort)."""
        with self._lock:
            profile = self._profiles.get(stage)
        if profile is None:
            return f"(no profile captured for stage {stage!r})"
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(limit)
        return buffer.getvalue()

    def reports(self, limit: int = 20) -> str:
        """Every captured stage's report, concatenated with headers."""
        sections = []
        for stage in self.stages:
            sections.append(f"=== stage: {stage} ===\n{self.report(stage, limit)}")
        return "\n".join(sections) if sections else "(no profiles captured)"
