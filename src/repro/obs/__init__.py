"""``repro.obs`` — tracing, metrics and profiling for query execution.

This package is the repo's observability layer, answering "where did this
query's time go, on which site, under which backend" without re-running it:

* :mod:`repro.obs.trace` — per-query structured traces (parse/plan/stage/
  per-site-task spans) with Chrome trace-event export (Perfetto-loadable)
  and a plain summary tree.  Span context travels through
  :class:`~repro.exec.SiteTask` payloads so spans survive the thread- and
  process-pool backends.
* :mod:`repro.obs.metrics` — a process-local :class:`MetricsRegistry` of
  counters/gauges/histograms with ``snapshot()`` and Prometheus text
  exposition; the session layer feeds it from each query's statistics.
* :mod:`repro.obs.profiling` — opt-in per-stage :mod:`cProfile` capture
  gated by ``repro.open(..., profile=True)`` or ``REPRO_PROFILE``.

Everything here is strictly additive and zero-cost when off: engines take
``trace``/``profiler`` keyword arguments defaulting to ``None`` and answers,
``search_steps`` and shipment fingerprints are bit-identical with tracing on
or off (see ``docs/observability.md`` for the overhead contract).
"""

from contextlib import contextmanager, nullcontext
from typing import Iterator, Optional

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    record_query,
    record_query_failure,
)
from .profiling import PROFILE_ENV, StageProfiler
from .trace import (
    CATEGORY_PLANNING,
    CATEGORY_QUERY,
    CATEGORY_STAGE,
    CATEGORY_TASK,
    Span,
    SpanContext,
    TaskSpan,
    Trace,
    Tracer,
    record_statistics_spans,
    validate_chrome_trace,
)

__all__ = [
    "CATEGORY_PLANNING",
    "CATEGORY_QUERY",
    "CATEGORY_STAGE",
    "CATEGORY_TASK",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PROFILE_ENV",
    "Span",
    "SpanContext",
    "StageProfiler",
    "TaskSpan",
    "Trace",
    "Tracer",
    "record_query",
    "record_query_failure",
    "record_statistics_spans",
    "stage_scope",
    "validate_chrome_trace",
]


@contextmanager
def stage_scope(
    trace: Optional[Trace],
    profiler: Optional[StageProfiler],
    stage_name: str,
    **attrs,
) -> Iterator[Optional[Span]]:
    """Open a stage span and/or a profile capture, whichever are enabled.

    The single instrumentation point the engines use around each pipeline
    stage: yields the open :class:`Span` when tracing is on (so the stage
    can attach shipment attributes before it closes) or ``None`` when off,
    and wraps the block in :meth:`StageProfiler.capture` when profiling is
    on.  With both off this is two ``None`` checks and a ``nullcontext`` —
    the zero-cost-when-off contract.
    """
    profile_cm = profiler.capture(stage_name) if profiler is not None else nullcontext()
    with profile_cm:
        if trace is None:
            yield None
        else:
            with trace.span(f"stage:{stage_name}", CATEGORY_STAGE, **attrs) as span:
                yield span
