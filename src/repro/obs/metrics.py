"""Metrics registry: counters, gauges and histograms with Prometheus export.

A :class:`MetricsRegistry` is a process-local, lock-guarded collection of
named metric families.  Each family is typed (counter / gauge / histogram)
and label-aware: ``registry.counter("repro_messages_total", stage="assembly")``
returns the series for that label set, creating it on first use.  Two read
paths exist:

* :meth:`MetricsRegistry.snapshot` — a plain nested dict, stable enough to
  assert against in tests and to attach to bench JSON;
* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` + samples), so ``repro query --metrics``
  output can be scraped or diffed directly.

The catalog of families the session layer feeds (via :func:`record_query`)
is documented in ``docs/observability.md``; nothing in the engines writes
metrics directly — they keep producing :class:`~repro.distributed.stats.QueryStatistics`,
and the session translates those into metric updates after each query.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram buckets (seconds) — tuned for per-stage wall clock of
#: the simulated workloads, which spans microseconds to a few seconds.
DEFAULT_BUCKETS = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (one label set of a counter family)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current total."""
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (one label set of a gauge family)."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the gauge by ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current value."""
        with self._lock:
            return self._value


class Histogram:
    """A bucketed distribution (one label set of a histogram family)."""

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at ``inf``."""
        with self._lock:
            counts = list(self._counts)
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out


class MetricsRegistry:
    """A typed, label-aware collection of metric families.

    Families are created on first use through :meth:`counter`, :meth:`gauge`
    and :meth:`histogram`; re-using a family name with a different type
    raises :class:`ValueError`.  All access is lock-guarded, so a session
    driving the threaded backend can record from the coordinator while a
    scraper formats :meth:`prometheus_text`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (type, help, {label_key: series})
        self._families: Dict[str, Tuple[str, str, Dict[_LabelKey, Any]]] = {}

    def _series(self, kind: str, name: str, help_text: str, labels: Dict[str, Any], factory):
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = (kind, help_text, {})
                self._families[name] = family
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family[0]}, not {kind}"
                )
            key = _label_key(labels)
            series = family[2].get(key)
            if series is None:
                series = factory()
                family[2][key] = series
            return series

    def counter(self, name: str, help_text: str = "", **labels: Any) -> Counter:
        """Get or create the :class:`Counter` for ``name`` + label set."""
        return self._series("counter", name, help_text, labels, Counter)

    def gauge(self, name: str, help_text: str = "", **labels: Any) -> Gauge:
        """Get or create the :class:`Gauge` for ``name`` + label set."""
        return self._series("gauge", name, help_text, labels, Gauge)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        """Get or create the :class:`Histogram` for ``name`` + label set."""
        return self._series(
            "histogram", name, help_text, labels, lambda: Histogram(buckets)
        )

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All families as a plain nested dict (stable for tests/bench JSON).

        Shape: ``{family: {"type", "help", "series": {label_str: value}}}``
        where a histogram's value is ``{"count", "sum", "buckets"}`` and
        ``label_str`` renders as ``k=v,k2=v2`` (empty string for no labels).
        """
        with self._lock:
            families = {
                name: (kind, help_text, dict(series))
                for name, (kind, help_text, series) in self._families.items()
            }
        out: Dict[str, Dict[str, Any]] = {}
        for name in sorted(families):
            kind, help_text, series = families[name]
            rendered: Dict[str, Any] = {}
            for key in sorted(series):
                label_str = ",".join(f"{k}={v}" for k, v in key)
                metric = series[key]
                if kind == "histogram":
                    rendered[label_str] = {
                        "count": metric.count,
                        "sum": metric.sum,
                        "buckets": [
                            [bound, count]
                            for bound, count in metric.cumulative_counts()
                        ],
                    }
                else:
                    rendered[label_str] = metric.value
            out[name] = {"type": kind, "help": help_text, "series": rendered}
        return out

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            families = {
                name: (kind, help_text, dict(series))
                for name, (kind, help_text, series) in self._families.items()
            }
        lines: List[str] = []
        for name in sorted(families):
            kind, help_text, series = families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for key in sorted(series):
                labels = "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}" if key else ""
                metric = series[key]
                if kind == "histogram":
                    for bound, count in metric.cumulative_counts():
                        le = "+Inf" if bound == float("inf") else _format_number(bound)
                        bucket_labels = list(key) + [("le", le)]
                        rendered = "{" + ",".join(f'{k}="{v}"' for k, v in bucket_labels) + "}"
                        lines.append(f"{name}_bucket{rendered} {count}")
                    lines.append(f"{name}_sum{labels} {_format_number(metric.sum)}")
                    lines.append(f"{name}_count{labels} {metric.count}")
                else:
                    lines.append(f"{name}{labels} {_format_number(metric.value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family (tests and long-lived sessions)."""
        with self._lock:
            self._families.clear()


def _format_number(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def record_query(
    registry: MetricsRegistry,
    statistics,
    *,
    shipment=None,
    engine: str = "",
    backend: str = "",
    pool_size: int = 0,
    encoded_rebuilds: Optional[int] = None,
    encoded_patches: Optional[int] = None,
    kernel: str = "",
    shards_per_site: int = 1,
) -> None:
    """Translate one finished query's statistics into metric updates.

    Called by the session layer (and the CLI) after each query; this is the
    single writer of the catalog families, so the engines stay
    metrics-agnostic.  ``shipment`` is an optional
    :class:`~repro.distributed.network.ShipmentSnapshot` supplying the
    per-kind byte breakdown the stage stats don't carry.
    """
    registry.counter(
        "repro_queries_total", "Queries executed, by engine.", engine=engine or "unknown"
    ).inc()
    if encoded_rebuilds is not None:
        registry.gauge(
            "repro_encoded_graph_rebuilds",
            "EncodedGraph rebuilds observed in this process so far.",
        ).set(encoded_rebuilds)
    if encoded_patches is not None:
        registry.gauge(
            "repro_encoded_graph_patches",
            "EncodedGraph in-place delta patches observed in this process so far.",
        ).set(encoded_patches)
    if statistics is None:
        return
    # The plan-cache families exist (at zero) even for queries that never
    # planned (star shortcut, planner-off configs) so scrapes always see them.
    hits_counter = registry.counter(
        "repro_plan_cache_hits_total", "Coordinator plan-cache hits."
    )
    misses_counter = registry.counter(
        "repro_plan_cache_misses_total", "Coordinator plan-cache misses."
    )
    for stage in getattr(statistics, "stages", ()):
        if "plan_cache_hit" not in stage.counters:
            continue
        hit = stage.counters["plan_cache_hit"]
        hits_counter.inc(hit)
        misses_counter.inc(1 - hit if hit in (0, 1) else 0)
    work = getattr(statistics, "work", {}) or {}
    registry.counter(
        "repro_search_steps_total",
        "Matcher search steps across all sites (paper's work metric).",
    ).inc(work.get("search_steps", 0))
    # Kernel families (always present, even at zero, so scrapes and the CI
    # smoke jobs can assert on them unconditionally): which matching kernel
    # served the query, how many candidate-column intersections it performed,
    # and how many intra-site shards each site's evaluation fanned out to.
    registry.counter(
        "repro_kernel_intersections_total",
        "Candidate-column intersections performed by the matching kernel.",
        kernel=kernel or "unknown",
    ).inc(work.get("kernel_intersections", 0))
    registry.gauge(
        "repro_kernel_shards_active",
        "Configured intra-site shards per site for local evaluation.",
    ).set(max(1, shards_per_site))
    # Fault-recovery families (always present, zero on clean runs) so the
    # chaos-smoke CI job and dashboards can assert on them unconditionally.
    registry.counter(
        "repro_task_retries_total",
        "Per-site task attempts beyond the first (injected transient faults).",
    ).inc(work.get("task_retries", 0))
    registry.counter(
        "repro_site_failures_total",
        "Site failures observed mid-query (injected or real).",
    ).inc(work.get("site_failures", 0))
    extra = getattr(statistics, "extra", {}) or {}
    registry.counter(
        "repro_degraded_queries_total",
        "Queries that returned partial answers after an unrecoverable site loss.",
    ).inc(1 if extra.get("degraded") else 0)
    for stage in getattr(statistics, "stages", ()):  # StageStats
        registry.counter(
            "repro_shipped_bytes_total",
            "Simulated bytes shipped between sites, by pipeline stage.",
            stage=stage.name,
        ).inc(stage.shipped_bytes)
        registry.counter(
            "repro_messages_total",
            "Simulated messages exchanged, by pipeline stage.",
            stage=stage.name,
        ).inc(stage.messages)
        registry.counter(
            "repro_site_tasks_total",
            "Per-site tasks executed, by pipeline stage.",
            stage=stage.name,
        ).inc(len(stage.site_times_s))
        registry.histogram(
            "repro_stage_seconds",
            "Per-stage wall clock (coordinator-perceived parallel time).",
            stage=stage.name,
        ).observe(stage.parallel_time_s)
    if shipment is not None:
        for kind, size in sorted(shipment.bytes_by_kind.items()):
            registry.counter(
                "repro_shipped_bytes_by_kind_total",
                "Simulated bytes shipped, by message kind.",
                kind=kind,
            ).inc(size)
    if backend:
        registry.gauge(
            "repro_executor_pool_size",
            "Configured worker-pool size of the session's executor backend.",
            backend=backend,
        ).set(pool_size)


def record_query_failure(registry: MetricsRegistry, *, engine: str = "", backend: str = "") -> None:
    """Count one query that raised instead of returning a result.

    The exception-path twin of :func:`record_query`: the session layer calls
    it from the ``except`` arm of ``Session.query()`` so failed executions
    still leave a metrics footprint (``repro_query_failures_total``) instead
    of silently vanishing from the scrape.
    """
    registry.counter(
        "repro_query_failures_total",
        "Queries that raised instead of returning a result, by engine.",
        engine=engine or "unknown",
        backend=backend or "unknown",
    ).inc()
