"""Structured per-query tracing.

A :class:`Tracer` produces one :class:`Trace` per query.  A trace is a tree
of :class:`Span` records — ``parse``, ``plan`` (with its ``plan_cache``
probe), one span per pipeline stage, and one span per per-site
:class:`~repro.exec.SiteTask` — annotated with the same accounting the
statistics carry (shipped bytes, messages, search steps).  Traces export two
ways:

* :meth:`Trace.to_chrome` — Chrome trace-event JSON (the ``traceEvents``
  array format), loadable in Perfetto / ``chrome://tracing``; sites render
  as separate tracks so the fan-out of every stage is visible at a glance;
* :meth:`Trace.summary` — a plain indented text tree for terminals and logs.

Span context crosses executor backends as data, not as object references:
the engine stamps its open stage span's :class:`SpanContext` onto each
:class:`~repro.exec.SiteTask`, the (possibly remote) worker measures a plain
:class:`TaskSpan`, and the engine's deterministic serial merge reassembles
the task spans under their parent stage span via :meth:`Trace.add_task_span`.
A task span measured in *another process* carries a ``perf_counter`` clock
that is not comparable to the coordinator's, so the merge re-anchors it at
its parent's start; same-process task spans keep their real offsets.

Tracing is strictly opt-in and zero-cost when off: with no trace object in
play the engines allocate nothing and take no extra branches beyond a
``None`` check, and a trace never alters control flow — answers,
``search_steps`` and shipment fingerprints are bit-identical with tracing on
or off (enforced by ``tests/exec/test_determinism.py`` and the Hypothesis
equivalence suites).
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

#: Chrome ``tid`` used for coordinator-side spans; per-site task spans render
#: on track ``SITE_TRACK_OFFSET + site_id``.
COORDINATOR_TRACK = 0
SITE_TRACK_OFFSET = 1

#: Span categories of the taxonomy (``docs/observability.md``).
CATEGORY_QUERY = "query"
CATEGORY_PLANNING = "planning"
CATEGORY_STAGE = "stage"
CATEGORY_TASK = "task"

_TRACE_IDS = itertools.count(1)


@dataclass(frozen=True)
class SpanContext:
    """A picklable reference to one open span of one trace.

    This is the only tracing state that crosses an executor-backend
    boundary: the engine stamps it onto :class:`~repro.exec.SiteTask`
    descriptors so the worker-measured :class:`TaskSpan` can find its parent
    stage span back in the coordinator's merge.
    """

    trace_id: str
    span_id: int


@dataclass(frozen=True)
class TaskSpan:
    """The raw timing of one executed site task, measured where it ran.

    ``start_s``/``end_s`` are ``time.perf_counter()`` readings taken in the
    executing process (``pid``); they are only comparable to the trace's own
    clock when ``pid`` matches the coordinator's.  Plain data, so it pickles
    through the process-pool backend unchanged.
    """

    site_id: int
    stage: str
    start_s: float
    end_s: float
    pid: int
    context: SpanContext

    @property
    def elapsed_s(self) -> float:
        """Wall-clock seconds the task's handler ran for."""
        return self.end_s - self.start_s


@dataclass
class Span:
    """One node of a trace: a named, categorized, timed interval.

    ``start_s`` is relative to the owning trace's origin; ``duration_s`` is
    filled when the span closes.  ``track`` selects the Chrome/Perfetto lane
    (coordinator vs per-site).  ``attrs`` carries the span's accounting
    (shipped bytes, messages, search steps, cache hits, ...).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    start_s: float
    duration_s: float = 0.0
    track: int = COORDINATOR_TRACK
    attrs: Dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attribute key/values; returns ``self``."""
        self.attrs.update(attrs)
        return self


class Trace:
    """The span tree of one query execution.

    Create through :meth:`Tracer.start_trace`.  Spans nest through the
    :meth:`span` context manager (a stack tracks the open parent); per-site
    task spans reassemble through :meth:`add_task_span`.  Access is
    lock-guarded so a traced engine running over the threaded backend can
    never corrupt the tree, although by design all span mutation happens in
    the coordinator's serial merge.
    """

    def __init__(self, name: str, **attrs: Any) -> None:
        self.trace_id = f"trace-{next(_TRACE_IDS)}"
        self.name = name
        #: Wall-clock epoch seconds when the trace began (trace metadata).
        self.started_at = time.time()
        self._origin = time.perf_counter()
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._stack: List[int] = []
        self.spans: List[Span] = []
        self._by_id: Dict[int, Span] = {}
        self._finished = False
        self.root = self._open(name, CATEGORY_QUERY, attrs)

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return time.perf_counter() - self._origin

    def _open(self, name: str, category: str, attrs: Dict[str, Any]) -> Span:
        with self._lock:
            span = Span(
                span_id=next(self._ids),
                parent_id=self._stack[-1] if self._stack else None,
                name=name,
                category=category,
                start_s=self._now(),
                attrs=dict(attrs),
            )
            self.spans.append(span)
            self._by_id[span.span_id] = span
            self._stack.append(span.span_id)
            return span

    def _close(self, span: Span) -> None:
        with self._lock:
            span.duration_s = self._now() - span.start_s
            if self._stack and self._stack[-1] == span.span_id:
                self._stack.pop()
            elif span.span_id in self._stack:  # pragma: no cover - defensive
                self._stack.remove(span.span_id)

    @contextmanager
    def span(self, name: str, category: str = CATEGORY_STAGE, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the current innermost open span."""
        span = self._open(name, category, attrs)
        try:
            yield span
        finally:
            self._close(span)

    def event(self, name: str, category: str = CATEGORY_PLANNING, **attrs: Any) -> Span:
        """Record a zero-duration marker span (e.g. the plan-cache probe)."""
        span = self._open(name, category, attrs)
        self._close(span)
        span.duration_s = 0.0
        return span

    def current_context(self) -> SpanContext:
        """The :class:`SpanContext` of the innermost open span."""
        with self._lock:
            span_id = self._stack[-1] if self._stack else self.root.span_id
        return SpanContext(trace_id=self.trace_id, span_id=span_id)

    def add_task_span(self, task_span: TaskSpan) -> Span:
        """Reassemble a worker-measured :class:`TaskSpan` into the tree.

        Same-process spans keep their measured offsets (``perf_counter`` is
        one clock per process); a span measured in a worker process is
        re-anchored at its parent stage span's start, preserving its measured
        duration — the lanes still show which sites ran and for how long,
        just not the pool's queueing delays.
        """
        parent = self._by_id.get(task_span.context.span_id, self.root)
        if task_span.pid == self._pid and task_span.start_s >= self._origin:
            start = task_span.start_s - self._origin
        else:
            start = parent.start_s
        with self._lock:
            span = Span(
                span_id=next(self._ids),
                parent_id=parent.span_id,
                name=f"site:{task_span.site_id}",
                category=CATEGORY_TASK,
                start_s=start,
                duration_s=task_span.elapsed_s,
                track=SITE_TRACK_OFFSET + task_span.site_id,
                attrs={"site_id": task_span.site_id, "stage": task_span.stage},
            )
            self.spans.append(span)
            self._by_id[span.span_id] = span
        return span

    def finish(self, **attrs: Any) -> "Trace":
        """Close the root span (idempotent) and stamp final attributes."""
        self.root.set(**attrs)
        if not self._finished:
            self._finished = True
            # Close any span left open (errors unwound past a with-block
            # would have closed theirs; this is the normal root close).
            with self._lock:
                open_ids = list(self._stack)
            for span_id in reversed(open_ids):
                self._close(self._by_id[span_id])
        return self

    @property
    def duration_s(self) -> float:
        """Root span duration (the traced query's end-to-end wall clock)."""
        return self.root.duration_s

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def find_spans(self, category: Optional[str] = None, name: Optional[str] = None) -> List[Span]:
        """Spans filtered by category and/or exact name, in creation order."""
        with self._lock:
            return [
                span
                for span in self.spans
                if (category is None or span.category == category)
                and (name is None or span.name == name)
            ]

    def children(self, span: Span) -> List[Span]:
        """Direct children of ``span``, in creation order."""
        with self._lock:
            return [child for child in self.spans if child.parent_id == span.span_id]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_chrome(self) -> Dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        The returned dict serializes to a Perfetto-loadable document: an
        ``X`` (complete) event per span with microsecond ``ts``/``dur``,
        one ``pid`` per trace, sites on their own named ``tid`` tracks, and
        span attributes under ``args``.
        """
        events: List[Dict[str, Any]] = []
        tracks = {COORDINATOR_TRACK: "coordinator"}
        for span in self.spans:
            if span.track not in tracks:
                tracks[span.track] = f"site {span.track - SITE_TRACK_OFFSET}"
        for track, label in sorted(tracks.items()):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": track,
                    "args": {"name": label},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "ts": round(span.start_s * 1_000_000, 3),
                    "dur": round(max(span.duration_s, 0.0) * 1_000_000, 3),
                    "pid": 1,
                    "tid": span.track,
                    "args": dict(span.attrs),
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "trace_id": self.trace_id,
                "name": self.name,
                "started_at": self.started_at,
            },
        }

    def save(self, path: str) -> str:
        """Write :meth:`to_chrome` JSON to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome(), handle, indent=1)
            handle.write("\n")
        return path

    def summary(self) -> str:
        """The span tree as indented text, durations in milliseconds."""
        lines: List[str] = []

        def render(span: Span, depth: int) -> None:
            attrs = ""
            if span.attrs:
                rendered = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                attrs = f"  [{rendered}]"
            lines.append(
                f"{'  ' * depth}{span.name} ({span.duration_s * 1000.0:.3f} ms){attrs}"
            )
            for child in self.children(span):
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Trace {self.trace_id} {self.name!r} spans={len(self.spans)}>"


class Tracer:
    """Factory and collector of per-query :class:`Trace` objects.

    A session-owned tracer keeps every trace it started (``tracer.traces``,
    most recent last) so a workload's traces can be inspected or exported
    after the fact.
    """

    def __init__(self) -> None:
        self.traces: List[Trace] = []
        self._lock = threading.Lock()

    def start_trace(self, name: str, **attrs: Any) -> Trace:
        """Begin (and retain) a new trace whose root span is ``name``."""
        trace = Trace(name, **attrs)
        with self._lock:
            self.traces.append(trace)
        return trace

    @property
    def last(self) -> Optional[Trace]:
        """The most recently started trace, or ``None``."""
        with self._lock:
            return self.traces[-1] if self.traces else None

    def clear(self) -> None:
        """Forget every retained trace."""
        with self._lock:
            self.traces.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.traces)


def record_statistics_spans(trace: Trace, statistics) -> None:
    """Reconstruct stage/site spans from a finished :class:`QueryStatistics`.

    Engines that bypass the staged instrumentation (the fixed-strategy
    baselines) still produce per-stage timings and per-site times; this
    helper synthesizes the corresponding spans after the fact, laid out
    sequentially per the simulation's response-time model.  Synthesized
    spans carry ``synthesized=True`` so consumers can tell them from
    measured ones.
    """
    cursor = trace._now()
    for stage in statistics.stages:
        duration = stage.parallel_time_s
        with trace.span(
            f"stage:{stage.name}",
            category=CATEGORY_STAGE,
            synthesized=True,
            shipped_bytes=stage.shipped_bytes,
            messages=stage.messages,
        ) as span:
            pass
        span.start_s = cursor
        span.duration_s = duration
        for site_id, seconds in sorted(stage.site_times_s.items()):
            site_span = trace.add_task_span(
                TaskSpan(
                    site_id=site_id,
                    stage=stage.name,
                    start_s=0.0,
                    end_s=seconds,
                    pid=-1,  # never the coordinator: forces re-anchoring
                    context=SpanContext(trace.trace_id, span.span_id),
                )
            )
            site_span.set(synthesized=True)
    return None


def validate_chrome_trace(payload: Any) -> List[Dict[str, Any]]:
    """Validate a Chrome trace-event document; return its complete events.

    Raises :class:`ValueError` describing the first violation.  The checks
    cover what Perfetto needs to load the file: a ``traceEvents`` array,
    ``X`` events with numeric non-negative ``ts``/``dur``, string
    ``name``/``cat``, integer ``pid``/``tid``, and dict ``args``.  Used by
    the trace schema tests and the CI ``obs-smoke`` job.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError("chrome trace must be an object with a 'traceEvents' array")
    events = payload["traceEvents"]
    if not isinstance(events, list) or not events:
        raise ValueError("'traceEvents' must be a non-empty array")
    complete: List[Dict[str, Any]] = []
    for position, event in enumerate(events):
        where = f"traceEvents[{position}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: events must be objects")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            raise ValueError(f"{where}: unsupported phase {phase!r} (expected 'X' or 'M')")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where}: 'name' must be a non-empty string")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                raise ValueError(f"{where}: {key!r} must be an integer")
        if phase == "M":
            continue
        if not isinstance(event.get("cat"), str) or not event["cat"]:
            raise ValueError(f"{where}: 'cat' must be a non-empty string")
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                raise ValueError(f"{where}: {key!r} must be a non-negative number")
        if not isinstance(event.get("args"), dict):
            raise ValueError(f"{where}: 'args' must be an object")
        complete.append(event)
    if not complete:
        raise ValueError("trace contains no complete ('X') events")
    return complete
