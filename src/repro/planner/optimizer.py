"""Greedy cost-based plan optimization and the planner facade.

:class:`PlanOptimizer` turns a query graph into a :class:`QueryPlan`:

* with statistics, a greedy minimum-estimated-cost ordering: start from the
  vertex with the fewest estimated candidates, then repeatedly extend the
  already-ordered region across the connected frontier, picking the vertex
  whose join keeps the estimated intermediate-result size smallest (the
  "fail fast" ordering);
* without statistics (or on an empty graph), the seed's static
  :func:`~repro.sparql.query_graph.traversal_order`, so behaviour degrades
  gracefully to exactly what the engine did before the planner existed.

Connectivity is preserved in both cases: after the first vertex, every next
vertex is adjacent to an already-placed one whenever the query graph allows
it, which the backtracking matcher relies on for early pruning.

:class:`QueryPlanner` bundles the optimizer with a shape-keyed
:class:`~repro.planner.plan_cache.PlanCache`, so hot query templates pay the
optimization cost once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import PatternTerm, Variable
from ..sparql.query_graph import QueryGraph, traversal_order
from .cardinality import CardinalityEstimator
from .plan import QueryPlan, SOURCE_FALLBACK, SOURCE_STATISTICS
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache, shape_key
from .statistics import GraphStatistics, collect_statistics


class PlanOptimizer:
    """Produce ordered query plans, statistics-driven when possible."""

    def __init__(self, statistics: Optional[GraphStatistics] = None) -> None:
        self._statistics = statistics
        self._estimator = (
            CardinalityEstimator(statistics) if statistics is not None and not statistics.is_empty else None
        )

    @property
    def has_statistics(self) -> bool:
        return self._estimator is not None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, query: QueryGraph) -> QueryPlan:
        """Order ``query``'s vertices greedily by estimated cost.

        Falls back to the static traversal order when no statistics are
        available (or the query is empty) — the plan is then marked with
        ``SOURCE_FALLBACK`` so callers can tell the difference.
        """
        if self._estimator is None or query.num_vertices == 0:
            return self._fallback_plan(query)
        return self._greedy_plan(query, self._estimator)

    def _fallback_plan(self, query: QueryGraph) -> QueryPlan:
        order = traversal_order(query)
        return QueryPlan(
            vertex_order=tuple(query.vertex_index(vertex) for vertex in order),
            edge_order=tuple(edge.index for edge in query.edges),
            source=SOURCE_FALLBACK,
        )

    def _greedy_plan(self, query: QueryGraph, estimator: CardinalityEstimator) -> QueryPlan:
        vertices = list(query.vertices)
        candidate_estimates: Dict[PatternTerm, float] = {
            vertex: estimator.vertex_cardinality(query, vertex) for vertex in vertices
        }

        def start_key(vertex: PatternTerm) -> Tuple:
            return (
                candidate_estimates[vertex],
                1 if isinstance(vertex, Variable) else 0,
                -query.degree(vertex),
                query.vertex_index(vertex),
            )

        order: List[PatternTerm] = []
        estimates: List[float] = []
        placed = set()
        intermediate = 1.0
        total_cost = 0.0
        while len(order) < len(vertices):
            frontier = [
                v
                for v in vertices
                if v not in placed and any(n in placed for n in query.neighbours(v))
            ]
            if not frontier:
                # First vertex, or a new connected component of a
                # disconnected query: restart from the cheapest vertex.
                best = min((v for v in vertices if v not in placed), key=start_key)
                grown = intermediate * candidate_estimates[best]
            else:
                best = None
                grown = 0.0
                best_key: Optional[Tuple] = None
                for vertex in frontier:
                    expansion = self._cheapest_expansion(query, estimator, vertex, placed)
                    new_size = max(
                        min(intermediate * expansion, intermediate * candidate_estimates[vertex]),
                        0.1,
                    )
                    key = (
                        new_size,
                        1 if isinstance(vertex, Variable) else 0,
                        -query.degree(vertex),
                        query.vertex_index(vertex),
                    )
                    if best_key is None or key < best_key:
                        best_key = key
                        best = vertex
                        grown = new_size
                assert best is not None
            order.append(best)
            placed.add(best)
            intermediate = max(grown, 0.1)
            estimates.append(intermediate)
            total_cost += intermediate

        pattern_costs = {edge.index: estimator.pattern_cardinality(edge) for edge in query.edges}
        edge_order = tuple(sorted(pattern_costs, key=lambda index: (pattern_costs[index], index)))
        return QueryPlan(
            vertex_order=tuple(query.vertex_index(vertex) for vertex in order),
            edge_order=edge_order,
            estimates=tuple(estimates),
            estimated_cost=total_cost,
            source=SOURCE_STATISTICS,
        )

    @staticmethod
    def _cheapest_expansion(
        query: QueryGraph,
        estimator: CardinalityEstimator,
        vertex: PatternTerm,
        placed: set,
    ) -> float:
        """Smallest expected fan-out over the edges connecting ``vertex`` to
        the already-placed region (the matcher narrows candidates through
        *every* such edge, so the tightest one dominates)."""
        best: Optional[float] = None
        for edge in query.edges_of(vertex):
            other = edge.other_endpoint(vertex) if vertex in edge.endpoints else None
            if other is None or (other not in placed and other != vertex):
                continue
            fan_out = estimator.expansion_factor(edge, other if other in placed else vertex)
            if best is None or fan_out < best:
                best = fan_out
        return best if best is not None else 1.0


class QueryPlanner:
    """Statistics + optimizer + plan cache: the engine-facing planner."""

    def __init__(
        self,
        statistics: Optional[GraphStatistics] = None,
        cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
    ) -> None:
        self._statistics = statistics
        self._optimizer = PlanOptimizer(statistics)
        self.cache = PlanCache(cache_size)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: RDFGraph, cache_size: int = DEFAULT_PLAN_CACHE_SIZE) -> "QueryPlanner":
        return cls(collect_statistics(graph), cache_size=cache_size)

    @property
    def statistics(self) -> Optional[GraphStatistics]:
        return self._statistics

    @property
    def has_statistics(self) -> bool:
        return self._optimizer.has_statistics

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan_for(self, query: QueryGraph) -> QueryPlan:
        """The (possibly cached) plan for ``query``."""
        key = shape_key(query)
        cached = self.cache.get(key)
        if cached is not None:
            return cached.as_cached()
        plan = self._optimizer.plan(query)
        self.cache.put(key, plan)
        return plan

    def order_for(self, query: QueryGraph) -> List[PatternTerm]:
        """Planned vertex traversal order for ``query`` (matcher entry point)."""
        return self.plan_for(query).order_for(query)

    def explain(self, query: QueryGraph) -> str:
        """Render the plan chosen for ``query``."""
        return self.plan_for(query).explain(query)
