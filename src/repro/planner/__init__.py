"""Cost-based query planning: statistics, cardinality estimation, plan cache.

The seed engine walked query vertices in a static
:func:`~repro.sparql.query_graph.traversal_order`.  This package adds the
standard next layer of a gStore-style engine:

* :mod:`statistics` — cheap per-graph/fragment summaries (predicate counts,
  distinct subjects/objects, degree histogram), serializable and mergeable
  across sites;
* :mod:`cardinality` — System-R-style estimates for triple patterns,
  vertex candidates and join fan-out;
* :mod:`plan` — the ordered :class:`QueryPlan` plus its ``explain()``
  rendering;
* :mod:`optimizer` — greedy minimum-cost ordering (connectivity-preserving,
  falling back to the static order without statistics) and the
  :class:`QueryPlanner` facade;
* :mod:`plan_cache` — a shape-keyed LRU so hot query templates plan once.

The planner is wired through :class:`~repro.store.TripleStore` /
:class:`~repro.store.LocalMatcher` (vertex order), the partial evaluator
(edge order) and the engine (per-query planning stage); the
``use_planner`` / ``plan_cache_size`` knobs live on
:class:`~repro.core.EngineConfig`.
"""

from .cardinality import MIN_CARDINALITY, CardinalityEstimator
from .optimizer import PlanOptimizer, QueryPlanner
from .plan import QueryPlan, SOURCE_CACHE, SOURCE_FALLBACK, SOURCE_STATISTICS
from .plan_cache import DEFAULT_PLAN_CACHE_SIZE, PlanCache, ShapeKey, shape_key
from .statistics import (
    GraphStatistics,
    PredicateStatistics,
    collect_statistics,
    degree_bucket,
    merge_statistics,
)

__all__ = [
    "CardinalityEstimator",
    "DEFAULT_PLAN_CACHE_SIZE",
    "GraphStatistics",
    "MIN_CARDINALITY",
    "PlanCache",
    "PlanOptimizer",
    "PredicateStatistics",
    "QueryPlan",
    "QueryPlanner",
    "SOURCE_CACHE",
    "SOURCE_FALLBACK",
    "SOURCE_STATISTICS",
    "ShapeKey",
    "shape_key",
    "collect_statistics",
    "degree_bucket",
    "merge_statistics",
]
