"""Graph statistics for cost-based query planning.

The planner never looks at the data graph directly: everything it knows is
summarized here, once per :class:`~repro.store.TripleStore` (the store caches
the summary and invalidates it on mutation).  The summary is deliberately
cheap — one pass over the triples — and deliberately small, because in the
distributed setting every site ships its statistics to the coordinator,
which aggregates them (see :func:`merge_statistics` and
:meth:`~repro.distributed.Cluster.graph_statistics`).

Collected per graph/fragment:

* total triple and vertex counts,
* per-predicate triple counts and distinct subject/object counts (the
  classic ``T(p) / d_s(p) / d_o(p)`` summaries every System-R-style
  cardinality model is built from), and
* a log-bucketed vertex-degree histogram (used to reason about expected
  fan-out when no predicate information helps).

Everything serializes to plain JSON-able dictionaries so statistics can be
stored alongside a partitioned workspace or shipped between sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Node
from ..rdf.triples import Triple


@dataclass
class PredicateStatistics:
    """Summary of all triples sharing one predicate."""

    count: int = 0
    distinct_subjects: int = 0
    distinct_objects: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A JSON-able rendering of this predicate's summary counters."""
        return {
            "count": self.count,
            "distinct_subjects": self.distinct_subjects,
            "distinct_objects": self.distinct_objects,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "PredicateStatistics":
        return cls(
            count=int(data.get("count", 0)),
            distinct_subjects=int(data.get("distinct_subjects", 0)),
            distinct_objects=int(data.get("distinct_objects", 0)),
        )


def degree_bucket(degree: int) -> int:
    """The histogram bucket of a vertex degree: ``bit_length`` (log2) buckets.

    Bucket ``b`` holds degrees in ``[2**(b-1), 2**b - 1]``; bucket 0 is
    unused because every counted vertex has degree >= 1.
    """
    return int(degree).bit_length()


@dataclass
class GraphStatistics:
    """One graph's (or fragment's) planner-facing summary."""

    num_triples: int = 0
    num_vertices: int = 0
    predicates: Dict[IRI, PredicateStatistics] = field(default_factory=dict)
    #: ``degree_bucket(degree) -> number of vertices`` histogram.
    degree_histogram: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Lookups used by the cardinality estimator
    # ------------------------------------------------------------------
    @property
    def num_predicates(self) -> int:
        return len(self.predicates)

    def predicate_count(self, predicate: IRI) -> int:
        """Number of triples labelled ``predicate`` (0 when unseen)."""
        stats = self.predicates.get(predicate)
        return stats.count if stats is not None else 0

    def distinct_subjects(self, predicate: IRI) -> int:
        """Distinct subject count of ``predicate`` (0 for unseen predicates)."""
        stats = self.predicates.get(predicate)
        return stats.distinct_subjects if stats is not None else 0

    def distinct_objects(self, predicate: IRI) -> int:
        """Distinct object count of ``predicate`` (0 for unseen predicates)."""
        stats = self.predicates.get(predicate)
        return stats.distinct_objects if stats is not None else 0

    def average_degree(self) -> float:
        """Mean vertex degree, estimated from the histogram buckets."""
        total_vertices = sum(self.degree_histogram.values())
        if not total_vertices:
            return 0.0
        # Use each bucket's geometric midpoint as the representative degree.
        # Buckets are summed in sorted order so the float accumulation is
        # identical however the histogram dict was built (collected fresh,
        # patched in place, or deserialized from a store file).
        weighted = 0.0
        for bucket, vertices in sorted(self.degree_histogram.items()):
            low = 2 ** (bucket - 1) if bucket > 0 else 0
            high = 2**bucket - 1 if bucket > 0 else 0
            weighted += vertices * ((low + high) / 2.0 or 1.0)
        return weighted / total_vertices

    @property
    def is_empty(self) -> bool:
        return self.num_triples == 0

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, object]:
        """A JSON-able rendering (predicates keyed by their IRI string)."""
        return {
            "num_triples": self.num_triples,
            "num_vertices": self.num_vertices,
            "predicates": {
                predicate.value: stats.as_dict() for predicate, stats in self.predicates.items()
            },
            "degree_histogram": {str(bucket): count for bucket, count in self.degree_histogram.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "GraphStatistics":
        predicates = {
            IRI(value): PredicateStatistics.from_dict(stats)
            for value, stats in dict(data.get("predicates", {})).items()
        }
        histogram = {
            int(bucket): int(count)
            for bucket, count in dict(data.get("degree_histogram", {})).items()
        }
        return cls(
            num_triples=int(data.get("num_triples", 0)),
            num_vertices=int(data.get("num_vertices", 0)),
            predicates=predicates,
            degree_histogram=histogram,
        )

    def replace_with(self, other: "GraphStatistics") -> None:
        """Overwrite this summary in place with ``other``'s contents.

        Planners and optimizers hold references to one statistics object;
        refreshing *in place* updates every holder at once instead of
        leaving them bound to a stale snapshot.
        """
        self.num_triples = other.num_triples
        self.num_vertices = other.num_vertices
        self.predicates.clear()
        self.predicates.update(other.predicates)
        self.degree_histogram.clear()
        self.degree_histogram.update(other.degree_histogram)

    def summary(self) -> str:
        """One-line human rendering used by ``repro explain``."""
        return (
            f"{self.num_triples} triples, {self.num_vertices} vertices, "
            f"{self.num_predicates} predicates, avg degree {self.average_degree():.1f}"
        )


def collect_statistics(graph: RDFGraph) -> GraphStatistics:
    """Summarize ``graph`` in one pass over its triples."""
    stats = GraphStatistics(num_triples=len(graph))
    subjects: Dict[IRI, set] = {}
    objects: Dict[IRI, set] = {}
    for triple in graph:
        per_predicate = stats.predicates.get(triple.predicate)
        if per_predicate is None:
            per_predicate = PredicateStatistics()
            stats.predicates[triple.predicate] = per_predicate
            subjects[triple.predicate] = set()
            objects[triple.predicate] = set()
        per_predicate.count += 1
        subjects[triple.predicate].add(triple.subject)
        objects[triple.predicate].add(triple.object)
    for predicate, per_predicate in stats.predicates.items():
        per_predicate.distinct_subjects = len(subjects[predicate])
        per_predicate.distinct_objects = len(objects[predicate])
    vertices = graph.vertices
    stats.num_vertices = len(vertices)
    for vertex in vertices:
        bucket = degree_bucket(graph.degree(vertex))
        stats.degree_histogram[bucket] = stats.degree_histogram.get(bucket, 0) + 1
    return stats


def apply_statistics_ops(
    stats: GraphStatistics,
    graph: RDFGraph,
    ops: Iterable[Tuple[str, Triple]],
) -> None:
    """Patch ``stats`` in place for a journal window of ``graph`` mutations.

    ``graph`` must already reflect the ops (they come from its own journal).
    The patch is *exact*: every touched predicate summary is recomputed from
    the graph's indexes, and the degree histogram is adjusted by walking each
    affected vertex's degree delta backwards — the result equals a fresh
    :func:`collect_statistics` of the mutated graph.
    """
    touched_predicates = set()
    degree_delta: Dict[Node, int] = {}
    triple_delta = 0
    for op, triple in ops:
        touched_predicates.add(triple.predicate)
        step = 1 if op == "+" else -1
        triple_delta += step
        # A self-loop contributes to both the out- and in-degree.
        degree_delta[triple.subject] = degree_delta.get(triple.subject, 0) + step
        degree_delta[triple.object] = degree_delta.get(triple.object, 0) + step
    stats.num_triples += triple_delta
    for predicate in touched_predicates:
        count = graph.count(predicate=predicate)
        if count == 0:
            stats.predicates.pop(predicate, None)
            continue
        per_predicate = stats.predicates.get(predicate)
        if per_predicate is None:
            per_predicate = PredicateStatistics()
            stats.predicates[predicate] = per_predicate
        per_predicate.count = count
        per_predicate.distinct_subjects = len(graph.subjects(predicate=predicate))
        per_predicate.distinct_objects = len(graph.objects(predicate=predicate))
    histogram = stats.degree_histogram
    for vertex, delta in degree_delta.items():
        if delta == 0:
            continue
        new_degree = graph.degree(vertex)
        old_degree = new_degree - delta
        if old_degree > 0:
            bucket = degree_bucket(old_degree)
            remaining = histogram.get(bucket, 0) - 1
            if remaining:
                histogram[bucket] = remaining
            else:
                histogram.pop(bucket, None)
            stats.num_vertices -= 1
        if new_degree > 0:
            bucket = degree_bucket(new_degree)
            histogram[bucket] = histogram.get(bucket, 0) + 1
            stats.num_vertices += 1


def merge_statistics(parts: Iterable[GraphStatistics]) -> GraphStatistics:
    """Aggregate per-site statistics into one cluster-wide summary.

    Counts add exactly.  Distinct subject/object counts and the vertex count
    also add, which over-counts vertices replicated on several fragments —
    an upper bound, which is the safe direction for a cost model (it can only
    make the planner *more* pessimistic about unselective predicates).
    """
    merged = GraphStatistics()
    for part in parts:
        merged.num_triples += part.num_triples
        merged.num_vertices += part.num_vertices
        for predicate, stats in part.predicates.items():
            into = merged.predicates.get(predicate)
            if into is None:
                into = PredicateStatistics()
                merged.predicates[predicate] = into
            into.count += stats.count
            into.distinct_subjects += stats.distinct_subjects
            into.distinct_objects += stats.distinct_objects
        for bucket, count in part.degree_histogram.items():
            merged.degree_histogram[bucket] = merged.degree_histogram.get(bucket, 0) + count
    return merged
