"""Cardinality estimation for triple patterns and joined query edges.

A thin System-R-style model over :class:`~repro.planner.statistics.GraphStatistics`:

* a triple pattern's cardinality starts from the predicate's triple count
  (or the whole graph for a variable predicate) and is divided by the
  distinct subject/object count for every constant endpoint;
* a query vertex's candidate cardinality is the minimum, over its incident
  edges, of the distinct-value count on the vertex's side of the edge;
* extending a partial match across an edge from a bound endpoint multiplies
  the intermediate result by the edge's expected fan-out
  (``triples(p) / distinct values on the bound side``).

All estimates are floats >= :data:`MIN_CARDINALITY` so products never
collapse to zero and orderings stay comparable.
"""

from __future__ import annotations

from typing import Optional

from ..rdf.terms import Variable
from ..sparql.query_graph import QueryEdge, QueryGraph
from .statistics import GraphStatistics

#: Estimates never drop below this, so that products and ratios stay finite.
MIN_CARDINALITY = 0.1


class CardinalityEstimator:
    """Estimate pattern/vertex/join cardinalities from graph statistics."""

    def __init__(self, statistics: GraphStatistics) -> None:
        self._stats = statistics

    @property
    def statistics(self) -> GraphStatistics:
        return self._stats

    # ------------------------------------------------------------------
    # Triple patterns
    # ------------------------------------------------------------------
    def pattern_cardinality(self, edge: QueryEdge) -> float:
        """Estimated number of data triples matching ``edge``'s pattern."""
        if isinstance(edge.predicate, Variable):
            base = float(self._stats.num_triples)
            distinct_subjects = float(max(1, self._stats.num_vertices))
            distinct_objects = float(max(1, self._stats.num_vertices))
        else:
            base = float(self._stats.predicate_count(edge.predicate))
            distinct_subjects = float(max(1, self._stats.distinct_subjects(edge.predicate)))
            distinct_objects = float(max(1, self._stats.distinct_objects(edge.predicate)))
        if base == 0.0:
            return MIN_CARDINALITY
        estimate = base
        if not isinstance(edge.subject, Variable):
            estimate /= distinct_subjects
        if not isinstance(edge.object, Variable):
            estimate /= distinct_objects
        return max(estimate, MIN_CARDINALITY)

    # ------------------------------------------------------------------
    # Query vertices
    # ------------------------------------------------------------------
    def vertex_cardinality(self, query: QueryGraph, vertex) -> float:
        """Estimated number of candidate data vertices for ``vertex``.

        Constants match at most one data vertex.  For a variable, every
        incident edge independently bounds the candidates by the number of
        distinct values appearing on the vertex's side of that edge; the
        tightest bound wins.
        """
        if not isinstance(vertex, Variable):
            return 1.0
        best: Optional[float] = None
        for edge in query.edges_of(vertex):
            bound = self._side_distinct(edge, vertex)
            # A constant on the far side makes the edge much more selective:
            # at most fan-out-many candidates survive, estimated by the
            # pattern cardinality itself.
            far = edge.other_endpoint(vertex) if vertex in edge.endpoints else None
            if far is not None and not isinstance(far, Variable):
                bound = min(bound, self.pattern_cardinality(edge))
            if best is None or bound < best:
                best = bound
        if best is None:
            best = float(max(1, self._stats.num_vertices))
        return max(best, MIN_CARDINALITY)

    def _side_distinct(self, edge: QueryEdge, vertex) -> float:
        """Distinct data values on ``vertex``'s side of ``edge``."""
        if isinstance(edge.predicate, Variable):
            return float(max(1, self._stats.num_vertices))
        if edge.subject == vertex:
            return float(max(1, self._stats.distinct_subjects(edge.predicate)))
        return float(max(1, self._stats.distinct_objects(edge.predicate)))

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def expansion_factor(self, edge: QueryEdge, bound_vertex) -> float:
        """Expected matches of ``edge`` per binding of ``bound_vertex``.

        The classic fan-out estimate ``T(p) / d(bound side)``: how many data
        edges with the right label leave one already-bound data vertex.
        """
        cardinality = self.pattern_cardinality(edge)
        distinct = self._side_distinct(edge, bound_vertex)
        return max(cardinality / distinct, MIN_CARDINALITY)

    def join_cardinality(self, left_cardinality: float, edge: QueryEdge, bound_vertex) -> float:
        """Estimated intermediate-result size after extending across ``edge``."""
        return max(left_cardinality * self.expansion_factor(edge, bound_vertex), MIN_CARDINALITY)
