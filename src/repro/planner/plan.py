"""Query plans: an ordered traversal of the query vertices plus estimates.

A :class:`QueryPlan` is *shape-generic*: it stores vertex positions (indexes
into :attr:`QueryGraph.vertices`) and query-edge indexes rather than the
terms themselves, so one plan can be reused for every query sharing the same
canonical shape (see :mod:`repro.planner.plan_cache`).  ``order_for`` resolves
the positions against a concrete query graph.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Tuple

from ..rdf.terms import PatternTerm
from ..sparql.query_graph import QueryGraph

#: How a plan was produced.
SOURCE_STATISTICS = "statistics"
SOURCE_FALLBACK = "fallback"
SOURCE_CACHE = "cache"


@dataclass(frozen=True)
class QueryPlan:
    """An ordered evaluation plan for one (connected) query graph shape."""

    #: Vertex positions (indexes into ``QueryGraph.vertices``) in visit order.
    vertex_order: Tuple[int, ...]
    #: Query-edge indexes, most selective (smallest estimated cardinality) first.
    edge_order: Tuple[int, ...]
    #: Estimated intermediate-result size after assigning each vertex of
    #: ``vertex_order`` (parallel to it; empty for fallback plans).
    estimates: Tuple[float, ...] = ()
    #: Sum of the intermediate-result estimates (the greedy cost objective).
    estimated_cost: float = 0.0
    #: ``statistics`` (optimized), ``fallback`` (static order) or ``cache``.
    source: str = SOURCE_FALLBACK

    # ------------------------------------------------------------------
    # Resolution against a concrete query
    # ------------------------------------------------------------------
    def order_for(self, query: QueryGraph) -> List[PatternTerm]:
        """The planned traversal order as terms of ``query``."""
        return [query.vertex_at(index) for index in self.vertex_order]

    def as_cached(self) -> "QueryPlan":
        """The same plan, marked as served from the plan cache."""
        return replace(self, source=SOURCE_CACHE)

    @property
    def used_statistics(self) -> bool:
        return self.source != SOURCE_FALLBACK

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def explain(self, query: QueryGraph) -> str:
        """Human-readable rendering of the chosen order and estimates."""
        lines = [
            f"plan source: {self.source}",
            f"estimated cost: {self.estimated_cost:.1f}",
            "vertex order:",
        ]
        for position, index in enumerate(self.vertex_order):
            term = query.vertex_at(index)
            if position < len(self.estimates):
                estimate = f"~{self.estimates[position]:.1f} intermediate results"
            else:
                estimate = "no estimate"
            lines.append(f"  {position + 1}. {term.n3()}  ({estimate})")
        lines.append("edge order:")
        for rank, edge_index in enumerate(self.edge_order):
            edge = query.edge_at(edge_index)
            lines.append(
                f"  {rank + 1}. {edge.subject.n3()} {edge.predicate.n3()} {edge.object.n3()}"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.vertex_order)
