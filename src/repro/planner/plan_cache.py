"""Shape-keyed LRU cache of query plans.

Planning is cheap but not free, and production query streams are dominated
by a small number of *templates*: the same BGP shape instantiated with
different constants ("all papers of author X").  The cache therefore keys
plans on the query graph's canonical shape with non-predicate constants
abstracted away:

* variables are renamed ``?0, ?1, ...`` in first-appearance order,
* subject/object constants are renamed ``$0, $1, ...`` in first-appearance
  order (two occurrences of the same constant share a token, preserving the
  join structure), and
* predicate constants keep their IRI, because the planner's cardinality
  estimates are predicate-driven — two queries over different predicates
  genuinely deserve different plans.

Since :class:`~repro.planner.plan.QueryPlan` stores vertex *positions*, a
cached plan resolves correctly against any query with the same key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..rdf.terms import PatternTerm, Variable
from ..sparql.query_graph import QueryGraph
from .plan import QueryPlan

#: Default maximum number of cached plans.
DEFAULT_PLAN_CACHE_SIZE = 128

ShapeKey = Tuple[Tuple[str, str, str], ...]


def shape_key(query: QueryGraph) -> ShapeKey:
    """The canonical shape of ``query`` with constants abstracted."""
    tokens: Dict[PatternTerm, str] = {}

    def vertex_token(term: PatternTerm) -> str:
        token = tokens.get(term)
        if token is None:
            if isinstance(term, Variable):
                token = f"?{sum(1 for t in tokens.values() if t.startswith('?'))}"
            else:
                token = f"${sum(1 for t in tokens.values() if t.startswith('$'))}"
            tokens[term] = token
        return token

    key = []
    for edge in query.edges:
        subject = vertex_token(edge.subject)
        predicate = edge.predicate.n3() if not isinstance(edge.predicate, Variable) else "?p"
        object_ = vertex_token(edge.object)
        key.append((subject, predicate, object_))
    return tuple(key)


class PlanCache:
    """A bounded LRU mapping of query shapes to plans, with hit accounting.

    All operations are guarded by a lock: with a threaded execution backend
    several sites may plan concurrently, and the LRU reordering plus the
    hit/miss counters are not safe to interleave.
    """

    def __init__(self, maxsize: int = DEFAULT_PLAN_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("plan cache size must be at least 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[ShapeKey, QueryPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, key: ShapeKey) -> Optional[QueryPlan]:
        """The cached plan for ``key``, refreshing its LRU position (None on miss)."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return plan

    def put(self, key: ShapeKey, plan: QueryPlan) -> None:
        """Cache ``plan`` under ``key``, evicting the least recently used entries."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached plan and reset the hit/miss counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: ShapeKey) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def describe(self) -> Dict[str, object]:
        """Occupancy and hit-rate counters (what ``repro explain`` reports)."""
        return {
            "size": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 3),
        }
