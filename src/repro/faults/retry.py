"""Deterministic retry policy for transient site-task failures.

Backoff is exponential with a cap and — deliberately — no jitter: the
chaos suite pins bit-identical behavior for the same seed across
serial/thread/process backends, and randomized sleeps would make retry
timing (and test wall-clock) nondeterministic without adding coverage.
The defaults are tuned for an in-process simulation where a "retry" costs
microseconds, not for a real network.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RetryPolicy:
    """How many times a site task is attempted and how long to wait between.

    ``max_attempts`` counts the first try: the default of 3 means one
    initial attempt plus up to two retries before the task is reported as
    failed (:data:`~repro.faults.FAILURE_TRANSIENT_EXHAUSTED`).
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.001
    max_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_for(self, failed_attempts: int) -> float:
        """Seconds to sleep after ``failed_attempts`` consecutive failures.

        Doubles per failure (``base * 2 ** (failed_attempts - 1)``) and
        saturates at ``max_backoff_s``.
        """
        if failed_attempts < 1:
            return 0.0
        return min(self.base_backoff_s * (2 ** (failed_attempts - 1)), self.max_backoff_s)


#: Policy used when a fault plan does not override it.
DEFAULT_RETRY_POLICY = RetryPolicy()
