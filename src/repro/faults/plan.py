"""Seeded, deterministic fault schedules (:class:`FaultPlan`).

A plan is a tuple of :class:`FaultEntry` values, each naming a site, a
pipeline stage, and a fault kind:

``kill``
    The site dies when it is asked to work on that stage.  Recoverable by
    default — the coordinator rebuilds the site from its fragment payload
    and re-executes the stage — or permanent with the ``unrecoverable``
    flag, in which case the query degrades to partial results.
``flaky``
    The first N attempts of the site's task raise
    :class:`~repro.faults.TransientTaskError`; the backend retries in place
    with capped backoff and the coordinator never notices.
``slow``
    The first attempt of the site's task sleeps for a fixed delay before
    running — injectable straggler latency.

Plans are immutable, picklable (they ride on :class:`~repro.exec.tasks.SiteTask`
into process-pool workers), and pure: whether an entry fires is a function
of ``(entry, task.stage, task.site_id, task.attempt, task.recovery)`` only,
which is what makes the same plan deterministic across serial, thread, and
process backends at any worker count.

The textual format accepted by :meth:`FaultPlan.parse` (and the CLI's
``repro query --inject-faults``)::

    kill:SITE@STAGE[:unrecoverable]
    flaky:SITE@STAGE[:FAILURES]
    slow:SITE@STAGE:SECONDS

with entries separated by ``;`` (or ``,``).  ``random:SEED`` is resolved by
the CLI into :meth:`FaultPlan.random` over the loaded cluster's site ids.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import SiteDownError, TransientTaskError
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

KILL = "kill"
FLAKY = "flaky"
SLOW = "slow"

_KINDS = (KILL, FLAKY, SLOW)

#: Pipeline stages a fault entry may target.  ``assembly`` has no per-site
#: compute task — its kills are injected at the shipment layer by
#: :class:`ShipmentFaultInjector` — so only ``kill`` entries may name it.
STAGE_CANDIDATES = "candidate_exchange"
STAGE_PARTIAL_EVAL = "partial_evaluation"
STAGE_PRUNING = "lec_pruning"
STAGE_LEC_FILTER = "lec_filter"
STAGE_ASSEMBLY = "assembly"

#: Which site-task names each injectable stage fans out.  Literal copies of
#: the names in :mod:`repro.core.site_tasks` — importing them here would
#: close an import cycle (``core.site_tasks`` → ``exec.tasks`` → this
#: package), so a test pins this mapping against
#: ``repro.core.site_tasks.PIPELINE_STAGE_TASKS`` instead.
TASKS_BY_STAGE: Dict[str, Tuple[str, ...]] = {
    STAGE_CANDIDATES: ("engine.candidate_vectors",),
    STAGE_PARTIAL_EVAL: ("engine.local_eval", "engine.partial_eval"),
    STAGE_PRUNING: ("engine.lec_features",),
    STAGE_LEC_FILTER: ("engine.lec_filter",),
    STAGE_ASSEMBLY: (),
}

INJECTABLE_STAGES: Tuple[str, ...] = tuple(TASKS_BY_STAGE)

#: Stages with a per-site compute task (everything except assembly); the
#: only legal targets for ``flaky`` and ``slow`` entries.
TASK_STAGES: Tuple[str, ...] = tuple(
    stage for stage, tasks in TASKS_BY_STAGE.items() if tasks
)


@dataclass(frozen=True)
class FaultEntry:
    """One scheduled fault: ``kind`` happening to ``site_id`` at ``stage``."""

    kind: str
    site_id: int
    stage: str
    failures: int = 1
    delay_s: float = 0.0
    unrecoverable: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {_KINDS}")
        if self.stage not in INJECTABLE_STAGES:
            raise ValueError(
                f"unknown stage {self.stage!r}; expected one of {INJECTABLE_STAGES}"
            )
        if self.site_id < 0:
            raise ValueError(f"site_id must be >= 0, got {self.site_id}")
        if self.kind != KILL and self.stage == STAGE_ASSEMBLY:
            raise ValueError(
                f"{self.kind!r} entries need a per-site compute stage; "
                f"{STAGE_ASSEMBLY!r} is a shipment-only stage (kill entries only)"
            )
        if self.kind == FLAKY and self.failures < 1:
            raise ValueError(f"flaky entries need failures >= 1, got {self.failures}")
        if self.kind == SLOW and self.delay_s <= 0:
            raise ValueError(f"slow entries need delay_s > 0, got {self.delay_s}")

    def spec(self) -> str:
        """The textual form :meth:`FaultPlan.parse` accepts."""
        base = f"{self.kind}:{self.site_id}@{self.stage}"
        if self.kind == KILL:
            return base + (":unrecoverable" if self.unrecoverable else "")
        if self.kind == FLAKY:
            return base if self.failures == 1 else f"{base}:{self.failures}"
        return f"{base}:{self.delay_s:g}"


def _parse_entry(text: str) -> FaultEntry:
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(
            f"bad fault entry {text!r}: expected KIND:SITE@STAGE[:EXTRA]"
        )
    kind = parts[0].strip().lower()
    target, extra = parts[1].strip(), [part.strip() for part in parts[2:]]
    if "@" not in target:
        raise ValueError(f"bad fault entry {text!r}: target must be SITE@STAGE")
    site_text, stage = target.split("@", 1)
    try:
        site_id = int(site_text)
    except ValueError:
        raise ValueError(f"bad fault entry {text!r}: site must be an integer") from None
    if len(extra) > 1:
        raise ValueError(f"bad fault entry {text!r}: too many ':'-separated fields")
    option = extra[0] if extra else None
    if kind == KILL:
        if option not in (None, "unrecoverable"):
            raise ValueError(
                f"bad fault entry {text!r}: kill takes only the 'unrecoverable' flag"
            )
        return FaultEntry(KILL, site_id, stage, unrecoverable=option == "unrecoverable")
    if kind == FLAKY:
        failures = 1
        if option is not None:
            try:
                failures = int(option)
            except ValueError:
                raise ValueError(
                    f"bad fault entry {text!r}: flaky failure count must be an integer"
                ) from None
        return FaultEntry(FLAKY, site_id, stage, failures=failures)
    if kind == SLOW:
        if option is None:
            raise ValueError(f"bad fault entry {text!r}: slow needs a delay in seconds")
        try:
            delay_s = float(option)
        except ValueError:
            raise ValueError(
                f"bad fault entry {text!r}: slow delay must be a number of seconds"
            ) from None
        return FaultEntry(SLOW, site_id, stage, delay_s=delay_s)
    raise ValueError(f"unknown fault kind {kind!r}; expected one of {_KINDS}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of injected faults plus the retry policy.

    The retry policy rides on the plan so one object carries everything the
    engine, backends, and workers need; pass a custom ``retry`` to tighten
    or widen the transient-failure budget.
    """

    entries: Tuple[FaultEntry, ...] = ()
    retry: RetryPolicy = DEFAULT_RETRY_POLICY

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))

    @classmethod
    def parse(cls, text: str, *, retry: Optional[RetryPolicy] = None) -> "FaultPlan":
        """Parse the ``kill:1@assembly;flaky:0@lec_pruning:2`` textual form."""
        pieces = [
            piece.strip()
            for piece in text.replace(",", ";").split(";")
            if piece.strip()
        ]
        if not pieces:
            raise ValueError("empty fault plan")
        entries = tuple(_parse_entry(piece) for piece in pieces)
        return cls(entries, retry=retry or DEFAULT_RETRY_POLICY)

    @classmethod
    def random(
        cls,
        seed: int,
        site_ids: Sequence[int],
        *,
        retry: Optional[RetryPolicy] = None,
    ) -> "FaultPlan":
        """A seeded random plan over ``site_ids``; same seed, same plan.

        Random plans are always *survivable* — kills are recoverable and
        flaky failure counts stay within the default retry budget — so a
        ``random:SEED`` chaos run must still produce the fault-free answers.
        """
        if not site_ids:
            raise ValueError("random fault plans need at least one site id")
        rng = random.Random(seed)
        entries: List[FaultEntry] = []
        for _ in range(rng.randint(1, 3)):
            kind = rng.choice(_KINDS)
            site_id = rng.choice(list(site_ids))
            if kind == KILL:
                stage = rng.choice(list(INJECTABLE_STAGES))
                entries.append(FaultEntry(KILL, site_id, stage))
            elif kind == FLAKY:
                stage = rng.choice(list(TASK_STAGES))
                entries.append(FaultEntry(FLAKY, site_id, stage, failures=rng.randint(1, 2)))
            else:
                stage = rng.choice(list(TASK_STAGES))
                entries.append(
                    FaultEntry(SLOW, site_id, stage, delay_s=rng.choice((0.001, 0.002, 0.005)))
                )
        return cls(tuple(entries), retry=retry or DEFAULT_RETRY_POLICY)

    def describe(self) -> str:
        """The plan in its parseable textual form."""
        return "; ".join(entry.spec() for entry in self.entries)

    def spec(self) -> str:
        """Alias of :meth:`describe` mirroring :meth:`FaultEntry.spec`."""
        return self.describe()

    # -- firing rules -----------------------------------------------------

    def _entries_for(self, task_name: str, site_id: int) -> Iterable[FaultEntry]:
        for entry in self.entries:
            if entry.site_id == site_id and task_name in TASKS_BY_STAGE[entry.stage]:
                yield entry

    def before_task(self, task: Any) -> None:
        """Fault hook run by ``execute_site_task`` before the handler.

        ``task`` is a :class:`~repro.exec.tasks.SiteTask` (typed loosely to
        keep this package import-cycle free).  Raises
        :class:`~repro.faults.SiteDownError` for a matching kill,
        :class:`~repro.faults.TransientTaskError` for a still-failing flaky
        entry, and sleeps for matching slow entries.  Recovery re-runs
        (``task.recovery``) only trip *unrecoverable* kills: the rebuilt
        site is healthy by definition unless the plan says the site can
        never come back.
        """
        matching = list(self._entries_for(task.stage, task.site_id))
        for entry in matching:
            if entry.kind != KILL:
                continue
            if entry.unrecoverable or not task.recovery:
                raise SiteDownError(
                    task.site_id, entry.stage, recoverable=not entry.unrecoverable
                )
        if task.recovery:
            return
        # Slow fires before flaky on purpose: a first attempt that is both
        # slow and flaky pays its straggler latency *and then* fails, which
        # is what lets the timing tests prove failed attempts never count
        # into the stage timers.
        for entry in matching:
            if entry.kind == SLOW and task.attempt == 1:
                time.sleep(entry.delay_s)
        for entry in matching:
            if entry.kind == FLAKY and task.attempt <= entry.failures:
                raise TransientTaskError(task.site_id, entry.stage, task.attempt)

    def kills_shipment(self) -> bool:
        """Whether any entry targets the shipment-only assembly stage."""
        return any(
            entry.kind == KILL and entry.stage == STAGE_ASSEMBLY
            for entry in self.entries
        )


class ShipmentFaultInjector:
    """MessageBus hook that kills a site as it ships assembly results.

    Installed by the engine via ``MessageBus.fault_scope`` for the duration
    of one ``execute()`` call, so it is confined to the coordinator's merge
    thread — the ``_fired`` set needs no locking.  A recoverable kill fires
    once (the re-send after the site is rebuilt goes through); an
    unrecoverable kill fires on every matching send.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._fired: Set[int] = set()

    def __call__(self, source: int, destination: int, kind: str, stage: str) -> None:
        if stage != STAGE_ASSEMBLY:
            return
        for index, entry in enumerate(self.plan.entries):
            if entry.kind != KILL or entry.stage != STAGE_ASSEMBLY:
                continue
            if source != entry.site_id:
                continue
            if entry.unrecoverable:
                raise SiteDownError(entry.site_id, STAGE_ASSEMBLY, recoverable=False)
            if index in self._fired:
                continue
            self._fired.add(index)
            raise SiteDownError(entry.site_id, STAGE_ASSEMBLY, recoverable=True)
