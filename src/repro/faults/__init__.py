"""Deterministic fault injection and recovery (``repro.faults``).

The paper's evaluation model assumes every site answers every per-site
stage.  This package breaks that assumption on purpose — and deterministically:
a :class:`FaultPlan` schedules site deaths, transient task failures, and
straggler latency by ``(site, stage, attempt)``, the execution runtime
(:mod:`repro.exec`) retries transients with a capped-backoff
:class:`RetryPolicy`, and the engine's serial merge recovers dead sites by
rebuilding them from their fragment payloads or degrades to partial results
(``Result.degraded``) when the plan marks a site unrecoverable.

Because every fault decision is a pure function of the plan and the task
identity, the same plan produces bit-identical answers, retry counts, and
shipment fingerprints across the serial, thread, and process backends at any
worker count — the property the chaos suite in ``tests/faults`` pins.

See ``docs/faults.md`` for the plan format and the determinism contract.
"""

from .errors import (
    FAILURE_SITE_DOWN,
    FAILURE_TRANSIENT_EXHAUSTED,
    SiteDownError,
    TaskFailure,
    TransientTaskError,
)
from .plan import (
    FLAKY,
    INJECTABLE_STAGES,
    KILL,
    SLOW,
    STAGE_ASSEMBLY,
    STAGE_CANDIDATES,
    STAGE_LEC_FILTER,
    STAGE_PARTIAL_EVAL,
    STAGE_PRUNING,
    TASK_STAGES,
    TASKS_BY_STAGE,
    FaultEntry,
    FaultPlan,
    ShipmentFaultInjector,
)
from .retry import DEFAULT_RETRY_POLICY, RetryPolicy

__all__ = [
    "DEFAULT_RETRY_POLICY",
    "FAILURE_SITE_DOWN",
    "FAILURE_TRANSIENT_EXHAUSTED",
    "FLAKY",
    "FaultEntry",
    "FaultPlan",
    "INJECTABLE_STAGES",
    "KILL",
    "RetryPolicy",
    "SLOW",
    "STAGE_ASSEMBLY",
    "STAGE_CANDIDATES",
    "STAGE_LEC_FILTER",
    "STAGE_PARTIAL_EVAL",
    "STAGE_PRUNING",
    "ShipmentFaultInjector",
    "SiteDownError",
    "TASKS_BY_STAGE",
    "TASK_STAGES",
    "TaskFailure",
    "TransientTaskError",
]
