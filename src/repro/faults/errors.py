"""Error taxonomy of the fault-injection layer.

The paper's evaluation model assumes every site answers every per-site
stage; this module names the two ways the chaos layer breaks that
assumption, because the recovery machinery treats them differently:

* :class:`TransientTaskError` — a blip (lost packet, brief overload).  The
  executing backend retries the task in place with capped backoff
  (:class:`~repro.faults.RetryPolicy`); the coordinator never notices unless
  the retries run out.
* :class:`SiteDownError` — the site died.  Retrying in place is pointless,
  so the task fails fast and the *coordinator* recovers: it rebuilds the
  site from its fragment payload and re-executes the stage body, or — when
  the fault plan marks the site unrecoverable — degrades to partial results
  that name the lost site.

Real handler bugs raise neither and propagate unchanged: only the injection
layer (:class:`~repro.faults.FaultPlan`) raises these two, so a clean run's
error behavior is untouched.

:class:`TaskFailure` is the picklable record of a failure that a
:class:`~repro.exec.tasks.SiteTaskResult` carries back across a process
boundary instead of raising — the coordinator's serial merge turns it into
recovery or degradation.
"""

from __future__ import annotations

from dataclasses import dataclass


class TransientTaskError(RuntimeError):
    """An injected, retryable blip in one site-task attempt."""

    def __init__(self, site_id: int, stage: str, attempt: int) -> None:
        super().__init__(
            f"injected transient failure at site {site_id} during {stage!r} "
            f"(attempt {attempt})"
        )
        self.site_id = site_id
        self.stage = stage
        self.attempt = attempt


class SiteDownError(RuntimeError):
    """An injected site death; never retried in place.

    ``recoverable`` mirrors the fault-plan entry: a recoverable death is
    healed by the coordinator rebuilding the site from its fragment payload,
    an unrecoverable one degrades the query to partial results.
    """

    def __init__(self, site_id: int, stage: str, recoverable: bool = True) -> None:
        kind = "recoverable" if recoverable else "unrecoverable"
        super().__init__(f"injected {kind} site death at site {site_id} during {stage!r}")
        self.site_id = site_id
        self.stage = stage
        self.recoverable = recoverable


#: Failure kinds recorded on a :class:`TaskFailure`.
FAILURE_SITE_DOWN = "site_down"
FAILURE_TRANSIENT_EXHAUSTED = "transient_exhausted"


@dataclass(frozen=True)
class TaskFailure:
    """Why a site task produced no value (plain data, pickles cleanly).

    ``recoverable`` tells the coordinator's merge whether rebuilding the
    site and re-executing the stage can still produce the missing value.
    """

    kind: str
    message: str
    recoverable: bool = True
