"""Partitioning strategies.

The paper's method is partitioning-tolerant: it accepts whatever vertex
assignment the data owners provide.  The evaluation nevertheless compares
three concrete strategies (Section VIII-D / VIII-F):

* **hash partitioning** — assign each vertex by a hash of its identifier
  (the paper's default: ``H(v) MOD N``);
* **semantic hash partitioning** (Lee & Liu) — group vertices by the URI
  hierarchy/prefix so that entities from the same "domain" co-locate, then
  hash the groups onto sites;
* **METIS** — a min-edge-cut partitioner.  We implement a multilevel
  scheme (heavy-edge-matching coarsening, greedy region growing, boundary
  refinement) with the same qualitative behaviour: far fewer crossing edges,
  but potentially imbalanced fragments.

All partitioners return a :class:`PartitionedGraph` and are deterministic for
a fixed ``seed``.
"""

from __future__ import annotations

import hashlib
import random
from abc import ABC, abstractmethod
from collections import defaultdict
from typing import Dict, List, Optional, Set

from ..rdf.graph import RDFGraph
from ..rdf.terms import IRI, Literal, Node
from .fragment import PartitionedGraph, build_partitioned_graph


def _stable_hash(text: str) -> int:
    """Deterministic 64-bit hash of ``text`` (stable across processes)."""
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class Partitioner(ABC):
    """Base class of every partitioning strategy."""

    #: Human-readable strategy name used in reports and benchmark tables.
    name: str = "abstract"

    def __init__(self, num_fragments: int) -> None:
        if num_fragments < 1:
            raise ValueError("num_fragments must be at least 1")
        self.num_fragments = num_fragments

    @abstractmethod
    def assign(self, graph: RDFGraph) -> Dict[Node, int]:
        """Compute the vertex → fragment assignment."""

    def partition(self, graph: RDFGraph, validate: bool = True) -> PartitionedGraph:
        """Partition ``graph`` into ``num_fragments`` fragments."""
        assignment = self.assign(graph)
        return build_partitioned_graph(
            graph,
            assignment,
            num_fragments=self.num_fragments,
            strategy=self.name,
            validate=validate,
        )


class HashPartitioner(Partitioner):
    """Assign each vertex ``v`` to fragment ``H(v) mod N`` (the paper's default)."""

    name = "hash"

    def assign(self, graph: RDFGraph) -> Dict[Node, int]:
        return {vertex: _stable_hash(vertex.n3()) % self.num_fragments for vertex in graph.vertices}


class SemanticHashPartitioner(Partitioner):
    """Group vertices by URI hierarchy before hashing (Lee & Liu's semantic hash).

    The grouping key of an IRI is its namespace plus the first
    ``hierarchy_levels`` path segments of its local part; literals are
    co-located with an adjacent entity when possible so that attribute values
    do not scatter away from their subjects.
    """

    name = "semantic_hash"

    def __init__(self, num_fragments: int, hierarchy_levels: int = 1) -> None:
        super().__init__(num_fragments)
        self.hierarchy_levels = hierarchy_levels

    def _group_key(self, vertex: Node) -> str:
        if isinstance(vertex, IRI):
            namespace = vertex.namespace or vertex.value
            local = vertex.local_name
            segments = [s for s in local.replace("#", "/").split("/") if s]
            # Keep the coarse hierarchy: namespace + leading local segments,
            # with trailing digits stripped so e.g. Department0..DepartmentN of
            # one university share a key.
            kept = []
            for segment in segments[: self.hierarchy_levels]:
                kept.append(segment.rstrip("0123456789"))
            return namespace + "/".join(kept)
        return vertex.n3()

    def assign(self, graph: RDFGraph) -> Dict[Node, int]:
        assignment: Dict[Node, int] = {}
        for vertex in graph.vertices:
            if isinstance(vertex, Literal):
                continue
            assignment[vertex] = _stable_hash(self._group_key(vertex)) % self.num_fragments
        # Place literals with (one of) their subjects to avoid pointless crossing edges.
        for vertex in graph.vertices:
            if not isinstance(vertex, Literal):
                continue
            neighbours = [t.subject for t in graph.in_edges(vertex)]
            anchored = next((n for n in neighbours if n in assignment), None)
            if anchored is not None:
                assignment[vertex] = assignment[anchored]
            else:
                assignment[vertex] = _stable_hash(vertex.n3()) % self.num_fragments
        return assignment


class MetisLikePartitioner(Partitioner):
    """A multilevel min-edge-cut partitioner standing in for METIS.

    Three phases, mirroring the classic multilevel scheme:

    1. *Coarsening*: repeatedly contract a heavy-edge matching until the
       coarse graph is small.
    2. *Initial partitioning*: greedy region growing over the coarse graph,
       biased toward balanced total vertex weight.
    3. *Uncoarsening + refinement*: project the assignment back and move
       boundary vertices when doing so reduces the edge cut without breaking
       the balance constraint.

    Like METIS itself, the result has a much smaller edge cut than hash
    partitioning but can be noticeably less balanced on skewed graphs — which
    is exactly the behaviour the paper's cost model penalises.
    """

    name = "metis"

    def __init__(
        self,
        num_fragments: int,
        seed: int = 13,
        balance_factor: float = 1.25,
        coarsen_until: int = 256,
        refinement_passes: int = 4,
    ) -> None:
        super().__init__(num_fragments)
        self.seed = seed
        self.balance_factor = balance_factor
        self.coarsen_until = max(coarsen_until, num_fragments * 4)
        self.refinement_passes = refinement_passes

    # -- weighted union-find style contraction ---------------------------------
    def assign(self, graph: RDFGraph) -> Dict[Node, int]:
        vertices = sorted(graph.vertices, key=lambda v: v.n3())
        if not vertices:
            return {}
        rng = random.Random(self.seed)
        index_of = {vertex: i for i, vertex in enumerate(vertices)}
        # Undirected weighted adjacency between vertex indexes.
        adjacency: List[Dict[int, int]] = [defaultdict(int) for _ in vertices]
        for triple in graph:
            u, v = index_of[triple.subject], index_of[triple.object]
            if u == v:
                continue
            adjacency[u][v] += 1
            adjacency[v][u] += 1
        weights = [1] * len(vertices)
        members: List[List[int]] = [[i] for i in range(len(vertices))]
        active = list(range(len(vertices)))

        while len(active) > self.coarsen_until:
            merged = self._coarsen_once(active, adjacency, weights, members, rng)
            if not merged:
                break
            active = [i for i in active if members[i]]

        assignment_index = self._initial_partition(active, adjacency, weights, rng)
        # Project back to original vertices.
        vertex_assignment = [0] * len(vertices)
        for super_vertex, fragment in assignment_index.items():
            for member in members[super_vertex]:
                vertex_assignment[member] = fragment
        self._refine(vertex_assignment, graph, index_of)
        return {vertex: vertex_assignment[index_of[vertex]] for vertex in vertices}

    def _coarsen_once(
        self,
        active: List[int],
        adjacency: List[Dict[int, int]],
        weights: List[int],
        members: List[List[int]],
        rng: random.Random,
    ) -> int:
        order = list(active)
        rng.shuffle(order)
        matched: Set[int] = set()
        merges = 0
        for u in order:
            if u in matched or not members[u]:
                continue
            neighbours = [(w, v) for v, w in adjacency[u].items() if v not in matched and members[v] and v != u]
            if not neighbours:
                continue
            neighbours.sort(key=lambda item: (-item[0], weights[item[1]]))
            _, v = neighbours[0]
            matched.add(u)
            matched.add(v)
            # Contract v into u.
            members[u].extend(members[v])
            members[v] = []
            weights[u] += weights[v]
            for neighbour, weight in list(adjacency[v].items()):
                if neighbour == u:
                    continue
                adjacency[u][neighbour] += weight
                adjacency[neighbour][u] += weight
                del adjacency[neighbour][v]
            adjacency[u].pop(v, None)
            adjacency[v].clear()
            merges += 1
        return merges

    def _initial_partition(
        self,
        active: List[int],
        adjacency: List[Dict[int, int]],
        weights: List[int],
        rng: random.Random,
    ) -> Dict[int, int]:
        total_weight = sum(weights[i] for i in active)
        target = total_weight / self.num_fragments
        unassigned = set(active)
        assignment: Dict[int, int] = {}
        fragment_weight = [0.0] * self.num_fragments
        for fragment in range(self.num_fragments):
            if not unassigned:
                break
            seed_vertex = max(unassigned, key=lambda i: (weights[i], i))
            frontier = [seed_vertex]
            while frontier and fragment_weight[fragment] < target and unassigned:
                vertex = frontier.pop(0)
                if vertex not in unassigned:
                    continue
                assignment[vertex] = fragment
                unassigned.discard(vertex)
                fragment_weight[fragment] += weights[vertex]
                neighbours = sorted(
                    (v for v in adjacency[vertex] if v in unassigned),
                    key=lambda v: -adjacency[vertex][v],
                )
                frontier.extend(neighbours)
                if not frontier and unassigned and fragment_weight[fragment] < target:
                    frontier.append(min(unassigned))
        for vertex in list(unassigned):
            fragment = min(range(self.num_fragments), key=lambda f: fragment_weight[f])
            assignment[vertex] = fragment
            fragment_weight[fragment] += weights[vertex]
        return assignment

    def _refine(self, assignment: List[int], graph: RDFGraph, index_of: Dict[Node, int]) -> None:
        vertices = list(index_of)
        total = len(vertices)
        max_size = int(self.balance_factor * total / self.num_fragments) + 1
        sizes = [0] * self.num_fragments
        for vertex in vertices:
            sizes[assignment[index_of[vertex]]] += 1
        for _ in range(self.refinement_passes):
            moved = 0
            for vertex in vertices:
                index = index_of[vertex]
                current = assignment[index]
                tallies: Dict[int, int] = defaultdict(int)
                for neighbour in graph.neighbours(vertex):
                    tallies[assignment[index_of[neighbour]]] += 1
                if not tallies:
                    continue
                best = max(tallies, key=lambda f: (tallies[f], f == current))
                if best != current and tallies[best] > tallies.get(current, 0) and sizes[best] < max_size:
                    assignment[index] = best
                    sizes[current] -= 1
                    sizes[best] += 1
                    moved += 1
            if moved == 0:
                break


#: Registry used by benchmarks/examples to look partitioners up by name.
PARTITIONER_REGISTRY = {
    HashPartitioner.name: HashPartitioner,
    SemanticHashPartitioner.name: SemanticHashPartitioner,
    MetisLikePartitioner.name: MetisLikePartitioner,
}


def make_partitioner(name: str, num_fragments: int, **kwargs) -> Partitioner:
    """Instantiate a partitioner by registry name (``hash``, ``semantic_hash``, ``metis``)."""
    if name not in PARTITIONER_REGISTRY:
        raise KeyError(f"unknown partitioner {name!r}; available: {sorted(PARTITIONER_REGISTRY)}")
    return PARTITIONER_REGISTRY[name](num_fragments, **kwargs)
