"""Saving and loading partitionings (and whole distributed workspaces).

In the paper's motivating scenario the partitioning comes from the outside —
data publishers decide where their triples live — so a practical deployment
needs to persist and exchange vertex assignments.  This module stores an
assignment as a plain JSON document (vertex N3 text → fragment id) next to
the N-Triples file of the graph, and can rebuild the
:class:`~repro.partition.PartitionedGraph` from the pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..rdf import graph as graph_module
from ..rdf.graph import RDFGraph
from ..rdf.ntriples import dump as dump_ntriples
from ..rdf.ntriples import load as load_ntriples
from ..rdf.ntriples import parse_line, parse_term
from ..rdf.terms import Node
from ..rdf.triples import Triple
from .fragment import Fragment, PartitionedGraph, build_partitioned_graph

PathLike = Union[str, Path]

#: Format marker written into every assignment file.
_FORMAT = "repro-partitioning/1"

#: Format marker of a dictionary-encoded fragment payload (current).
_FRAGMENT_FORMAT = "repro-fragment/2"

#: Format marker of the legacy payload that repeated every term's N3 text in
#: every vertex and edge entry; still readable, no longer written.
_FRAGMENT_FORMAT_V1 = "repro-fragment/1"

#: Format marker of a store-reference payload: instead of inlining the
#: fragment's data it points at a :class:`~repro.persist.ClusterStore` file
#: (``store_path``, ``fragment_id``) pinned at a delta sequence number, and
#: the receiver loads the fragment from the store read-only.  Written by
#: ``WorkerBootstrap.from_cluster`` when the cluster has an attached store.
_FRAGMENT_FORMAT_V3 = "repro-fragment/3"


def assignment_to_dict(partitioned: PartitionedGraph) -> Dict[str, object]:
    """The JSON-serializable representation of a partitioning's assignment."""
    return {
        "format": _FORMAT,
        "strategy": partitioned.strategy,
        "num_fragments": partitioned.num_fragments,
        "assignment": {
            vertex.n3(): fragment_id for vertex, fragment_id in partitioned.assignment.items()
        },
    }


def save_assignment(partitioned: PartitionedGraph, path: PathLike) -> None:
    """Write the vertex → fragment assignment of ``partitioned`` to ``path`` (JSON)."""
    payload = assignment_to_dict(partitioned)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_assignment(path: PathLike) -> Dict[Node, int]:
    """Read a vertex → fragment assignment written by :func:`save_assignment`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path!s} is not a repro partitioning file")
    return {parse_term(text): fragment_id for text, fragment_id in payload["assignment"].items()}


def load_partitioning(
    graph: RDFGraph,
    path: PathLike,
    validate: bool = True,
) -> PartitionedGraph:
    """Rebuild a :class:`PartitionedGraph` for ``graph`` from a saved assignment."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path!s} is not a repro partitioning file")
    assignment = {parse_term(text): fid for text, fid in payload["assignment"].items()}
    return build_partitioned_graph(
        graph,
        assignment,
        num_fragments=payload.get("num_fragments"),
        strategy=payload.get("strategy", "loaded"),
        validate=validate,
    )


def fragment_to_payload(fragment: Fragment) -> Dict[str, object]:
    """Plain-data (JSON- and pickle-safe) representation of one fragment.

    The payload is dictionary-encoded: every distinct term of the fragment
    (vertices and predicates) is serialized as N3 text exactly once, in the
    sorted ``terms`` list, and vertices/edges reference terms by their index
    in that list.  Sorting the dictionary and every id list makes equal
    fragments produce equal payloads, and shipping each term once makes the
    pickles the process-pool execution backend sends to its workers much
    smaller than the v1 format, which repeated the full N3 text of every
    term in every edge (:mod:`repro.exec.worker` rebuilds every site's
    fragment from these payloads exactly once, in its initializer).
    """
    terms = set(fragment.internal_vertices)
    terms.update(fragment.extended_vertices)
    for edge in fragment.internal_edges:
        terms.update((edge.subject, edge.predicate, edge.object))
    for edge in fragment.crossing_edges:
        terms.update((edge.subject, edge.predicate, edge.object))
    # N3 text is unique per term (types have disjoint surface syntax), so it
    # is a canonical sort key and the round trip needs one parse per term.
    ordered = sorted(term.n3() for term in terms)
    term_id = {text: position for position, text in enumerate(ordered)}

    def edge_ids(edges) -> List[List[int]]:
        return sorted(
            [term_id[e.subject.n3()], term_id[e.predicate.n3()], term_id[e.object.n3()]]
            for e in edges
        )

    return {
        "format": _FRAGMENT_FORMAT,
        "fragment_id": fragment.fragment_id,
        "terms": ordered,
        "internal_vertices": sorted(term_id[v.n3()] for v in fragment.internal_vertices),
        "extended_vertices": sorted(term_id[v.n3()] for v in fragment.extended_vertices),
        "internal_edges": edge_ids(fragment.internal_edges),
        "crossing_edges": edge_ids(fragment.crossing_edges),
    }


def fragment_to_store_payload(fragment_id: int, store) -> Dict[str, object]:
    """A v3 store-reference payload for one fragment of an attached store.

    Ships three scalars instead of the fragment's data: the store file path,
    the fragment id and the store's current delta head.  The receiving
    process opens the file read-only and rebuilds the fragment (base edges +
    bounded delta replay), so bootstrap cost scales with the fragment — not
    with what must be pickled through a pipe.
    """
    return {
        "format": _FRAGMENT_FORMAT_V3,
        "fragment_id": int(fragment_id),
        "store_path": str(store.path),
        "delta_seq": int(store.delta_head),
    }


def fragment_from_payload(payload: Dict[str, object]) -> Fragment:
    """Rebuild a :class:`Fragment` written by :func:`fragment_to_payload`.

    Accepts the current dictionary-encoded format, the legacy v1 format that
    spelled every term out in place, and the v3 store-reference format
    (which opens the referenced store file read-only).
    """
    marker = payload.get("format")
    if marker == _FRAGMENT_FORMAT_V3:
        from ..persist import ClusterStore

        with ClusterStore.open(payload["store_path"], read_only=True) as store:
            return store.load_fragment(
                int(payload["fragment_id"]), up_to=int(payload["delta_seq"])
            )
    if marker == _FRAGMENT_FORMAT_V1:
        return Fragment(
            fragment_id=int(payload["fragment_id"]),
            internal_vertices={parse_term(text) for text in payload["internal_vertices"]},
            extended_vertices={parse_term(text) for text in payload["extended_vertices"]},
            internal_edges={parse_line(text) for text in payload["internal_edges"]},
            crossing_edges={parse_line(text) for text in payload["crossing_edges"]},
        )
    if marker != _FRAGMENT_FORMAT:
        raise ValueError(f"not a repro fragment payload: {marker!r}")
    terms = [parse_term(text) for text in payload["terms"]]

    def edges(entries) -> set:
        return {Triple(terms[s], terms[p], terms[o]) for s, p, o in entries}

    return Fragment(
        fragment_id=int(payload["fragment_id"]),
        internal_vertices={terms[i] for i in payload["internal_vertices"]},
        extended_vertices={terms[i] for i in payload["extended_vertices"]},
        internal_edges=edges(payload["internal_edges"]),
        crossing_edges=edges(payload["crossing_edges"]),
    )


def fragments_to_payloads(partitioned: PartitionedGraph) -> List[Dict[str, object]]:
    """Every fragment of ``partitioned`` as a payload, in fragment-id order."""
    return [fragment_to_payload(fragment) for fragment in partitioned]


def save_workspace(partitioned: PartitionedGraph, directory: PathLike) -> Dict[str, Path]:
    """Persist a whole distributed workspace (graph + assignment) to ``directory``.

    Returns the paths written: ``graph.nt`` with the full RDF graph and
    ``partitioning.json`` with the assignment.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph_path = directory / "graph.nt"
    assignment_path = directory / "partitioning.json"
    dump_ntriples(partitioned.graph, graph_path)
    save_assignment(partitioned, assignment_path)
    return {"graph": graph_path, "assignment": assignment_path}


def load_workspace(directory: PathLike, validate: bool = True) -> PartitionedGraph:
    """Rebuild the distributed workspace written by :func:`save_workspace`."""
    directory = Path(directory)
    graph = load_ntriples(directory / "graph.nt", name=directory.name)
    return load_partitioning(graph, directory / "partitioning.json", validate=validate)
