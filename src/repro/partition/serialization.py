"""Saving and loading partitionings (and whole distributed workspaces).

In the paper's motivating scenario the partitioning comes from the outside —
data publishers decide where their triples live — so a practical deployment
needs to persist and exchange vertex assignments.  This module stores an
assignment as a plain JSON document (vertex N3 text → fragment id) next to
the N-Triples file of the graph, and can rebuild the
:class:`~repro.partition.PartitionedGraph` from the pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..rdf import graph as graph_module
from ..rdf.graph import RDFGraph
from ..rdf.ntriples import dump as dump_ntriples
from ..rdf.ntriples import load as load_ntriples
from ..rdf.ntriples import parse_line, parse_term
from ..rdf.terms import Node
from .fragment import Fragment, PartitionedGraph, build_partitioned_graph

PathLike = Union[str, Path]

#: Format marker written into every assignment file.
_FORMAT = "repro-partitioning/1"

#: Format marker of a single serialized fragment payload.
_FRAGMENT_FORMAT = "repro-fragment/1"


def assignment_to_dict(partitioned: PartitionedGraph) -> Dict[str, object]:
    """The JSON-serializable representation of a partitioning's assignment."""
    return {
        "format": _FORMAT,
        "strategy": partitioned.strategy,
        "num_fragments": partitioned.num_fragments,
        "assignment": {
            vertex.n3(): fragment_id for vertex, fragment_id in partitioned.assignment.items()
        },
    }


def save_assignment(partitioned: PartitionedGraph, path: PathLike) -> None:
    """Write the vertex → fragment assignment of ``partitioned`` to ``path`` (JSON)."""
    payload = assignment_to_dict(partitioned)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_assignment(path: PathLike) -> Dict[Node, int]:
    """Read a vertex → fragment assignment written by :func:`save_assignment`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path!s} is not a repro partitioning file")
    return {parse_term(text): fragment_id for text, fragment_id in payload["assignment"].items()}


def load_partitioning(
    graph: RDFGraph,
    path: PathLike,
    validate: bool = True,
) -> PartitionedGraph:
    """Rebuild a :class:`PartitionedGraph` for ``graph`` from a saved assignment."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") != _FORMAT:
        raise ValueError(f"{path!s} is not a repro partitioning file")
    assignment = {parse_term(text): fid for text, fid in payload["assignment"].items()}
    return build_partitioned_graph(
        graph,
        assignment,
        num_fragments=payload.get("num_fragments"),
        strategy=payload.get("strategy", "loaded"),
        validate=validate,
    )


def fragment_to_payload(fragment: Fragment) -> Dict[str, object]:
    """Plain-data (JSON- and pickle-safe) representation of one fragment.

    Vertices and edges are serialized as N3 text and sorted, so equal
    fragments always produce equal payloads.  This is the unit the
    process-pool execution backend ships to its workers: each worker rebuilds
    every site's fragment from these payloads exactly once, in its
    initializer (:mod:`repro.exec.worker`).
    """
    return {
        "format": _FRAGMENT_FORMAT,
        "fragment_id": fragment.fragment_id,
        "internal_vertices": sorted(vertex.n3() for vertex in fragment.internal_vertices),
        "extended_vertices": sorted(vertex.n3() for vertex in fragment.extended_vertices),
        "internal_edges": sorted(edge.n3() for edge in fragment.internal_edges),
        "crossing_edges": sorted(edge.n3() for edge in fragment.crossing_edges),
    }


def fragment_from_payload(payload: Dict[str, object]) -> Fragment:
    """Rebuild a :class:`Fragment` written by :func:`fragment_to_payload`."""
    if payload.get("format") != _FRAGMENT_FORMAT:
        raise ValueError(f"not a repro fragment payload: {payload.get('format')!r}")
    return Fragment(
        fragment_id=int(payload["fragment_id"]),
        internal_vertices={parse_term(text) for text in payload["internal_vertices"]},
        extended_vertices={parse_term(text) for text in payload["extended_vertices"]},
        internal_edges={parse_line(text) for text in payload["internal_edges"]},
        crossing_edges={parse_line(text) for text in payload["crossing_edges"]},
    )


def fragments_to_payloads(partitioned: PartitionedGraph) -> List[Dict[str, object]]:
    """Every fragment of ``partitioned`` as a payload, in fragment-id order."""
    return [fragment_to_payload(fragment) for fragment in partitioned]


def save_workspace(partitioned: PartitionedGraph, directory: PathLike) -> Dict[str, Path]:
    """Persist a whole distributed workspace (graph + assignment) to ``directory``.

    Returns the paths written: ``graph.nt`` with the full RDF graph and
    ``partitioning.json`` with the assignment.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    graph_path = directory / "graph.nt"
    assignment_path = directory / "partitioning.json"
    dump_ntriples(partitioned.graph, graph_path)
    save_assignment(partitioned, assignment_path)
    return {"graph": graph_path, "assignment": assignment_path}


def load_workspace(directory: PathLike, validate: bool = True) -> PartitionedGraph:
    """Rebuild the distributed workspace written by :func:`save_workspace`."""
    directory = Path(directory)
    graph = load_ntriples(directory / "graph.nt", name=directory.name)
    return load_partitioning(graph, directory / "partitioning.json", validate=validate)
