"""Partitioning cost model (Section VII of the paper).

The number of LEC features — and therefore the cost of the whole framework —
depends on how crossing edges are distributed over boundary vertices, not
just on how many crossing edges there are.  Section VII derives a cost for a
given partitioning F = {F1, ..., Fk}:

* the *distribution* of crossing edges over a vertex v is
  ``p_F(v) = |N(v) ∩ Ec| / (2 |Ec|)``,
* the *expected* number of crossing edges attached to v is
  ``E_F(v) = |N(v) ∩ Ec| * p_F(v)``,
* the total expectation is ``E_F(V) = Σ_v E_F(v)``, which is small when the
  crossing edges are scattered over many boundary vertices, and
* the partitioning cost combines concentration and balance:
  ``Cost(F) = E_F(V) * max_i |E_i ∪ Ec_i|``.

Among a set of existing partitionings, the paper selects the one with the
smallest cost.  This module computes all of the above and also reproduces the
Fig. 8 star-query LEC-feature counting example.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..rdf.terms import Node
from .fragment import PartitionedGraph


@dataclass(frozen=True)
class PartitioningCost:
    """The components of the Section VII cost for one partitioning."""

    strategy: str
    num_crossing_edges: int
    expectation: float
    largest_fragment_edges: int
    cost: float

    def as_row(self) -> Dict[str, object]:
        return {
            "strategy": self.strategy,
            "crossing_edges": self.num_crossing_edges,
            "expectation": self.expectation,
            "largest_fragment_edges": self.largest_fragment_edges,
            "cost": self.cost,
        }


def crossing_edge_distribution(partitioned: PartitionedGraph) -> Dict[Node, float]:
    """``p_F(v)`` for every vertex adjacent to at least one crossing edge."""
    crossing = partitioned.crossing_edges
    total = len(crossing)
    if total == 0:
        return {}
    counts: Dict[Node, int] = {}
    for edge in crossing:
        counts[edge.subject] = counts.get(edge.subject, 0) + 1
        counts[edge.object] = counts.get(edge.object, 0) + 1
    return {vertex: count / (2.0 * total) for vertex, count in counts.items()}


def crossing_edge_expectation(partitioned: PartitionedGraph) -> float:
    """``E_F(V) = Σ_v |N(v) ∩ Ec| * p_F(v)``.

    Low values mean the crossing edges are scattered over many boundary
    vertices (good for this framework); high values mean they concentrate on
    a few hub vertices (bad: many LEC features share the same boundary
    vertex, inflating the join space).
    """
    crossing = partitioned.crossing_edges
    total = len(crossing)
    if total == 0:
        return 0.0
    counts: Dict[Node, int] = {}
    for edge in crossing:
        counts[edge.subject] = counts.get(edge.subject, 0) + 1
        counts[edge.object] = counts.get(edge.object, 0) + 1
    return sum(count * (count / (2.0 * total)) for count in counts.values())


def largest_fragment_size(partitioned: PartitionedGraph) -> int:
    """``max_i |E_i ∪ Ec_i|`` — the edge count of the largest fragment."""
    return max((fragment.num_edges for fragment in partitioned), default=0)


def partitioning_cost(partitioned: PartitionedGraph) -> PartitioningCost:
    """The full Section VII cost of one partitioning."""
    expectation = crossing_edge_expectation(partitioned)
    largest = largest_fragment_size(partitioned)
    return PartitioningCost(
        strategy=partitioned.strategy,
        num_crossing_edges=len(partitioned.crossing_edges),
        expectation=expectation,
        largest_fragment_edges=largest,
        cost=expectation * largest,
    )


def select_best_partitioning(candidates: Sequence[PartitionedGraph]) -> Tuple[PartitionedGraph, PartitioningCost]:
    """Pick the candidate partitioning with the smallest Section VII cost."""
    if not candidates:
        raise ValueError("no candidate partitionings given")
    scored = [(partitioning_cost(candidate), candidate) for candidate in candidates]
    best_cost, best = min(scored, key=lambda item: item[0].cost)
    return best, best_cost


def compare_partitionings(candidates: Sequence[PartitionedGraph]) -> List[PartitioningCost]:
    """Cost rows for every candidate (the shape of the paper's Table IV)."""
    return [partitioning_cost(candidate) for candidate in candidates]


def star_query_lec_feature_count(boundary_degrees: Iterable[int], star_edges: int) -> int:
    """Number of LEC features a star query induces for given boundary degrees.

    Reproduces the Fig. 8 analysis: for a star query with ``star_edges``
    edges and a boundary vertex with ``d`` adjacent crossing edges, the
    crossing edges can cover 1..min(d, star_edges) of the query edges, giving
    ``Σ_j C(d, j)`` LEC features per boundary vertex; the partitioning total
    is the sum over boundary vertices.  In Fig. 8(a) a single boundary vertex
    with 4 crossing edges and a 2-edge star gives C(4,2)+C(4,1)=10, while in
    Fig. 8(b) two boundary vertices with 3 and 2 crossing edges give
    C(3,2)+C(3,1)+C(2,2)+C(2,1)=9.
    """
    total = 0
    for degree in boundary_degrees:
        for used in range(1, min(degree, star_edges) + 1):
            total += math.comb(degree, used)
    return total
