"""Cost-guided partitioning refinement (an extension of Section VII).

The paper stops at *selecting* the best partitioning among those that already
exist ("a more sophisticated partitioning strategy is beyond the scope of
this study").  This module implements the natural next step the cost model
suggests: a local-search refinement that moves boundary vertices between
fragments whenever doing so lowers ``CostPartitioning`` — i.e. it scatters
concentrated crossing edges and keeps fragments balanced — while preserving
the vertex-disjoint invariants of Definition 1.

The refinement is deliberately conservative: only vertices adjacent to a
crossing edge are candidates for a move, the balance constraint bounds the
largest fragment, and a pass budget bounds the work.  It is an *extension*
beyond the paper, reported separately in the ablation benchmark
(``benchmarks/bench_ablation_refinement.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import Node
from .cost_model import partitioning_cost
from .fragment import PartitionedGraph, build_partitioned_graph


@dataclass(frozen=True)
class RefinementReport:
    """What a refinement run did and what it achieved."""

    passes: int
    moves: int
    initial_cost: float
    final_cost: float

    @property
    def improvement(self) -> float:
        """Relative cost reduction in [0, 1] (0 when nothing improved)."""
        if self.initial_cost <= 0:
            return 0.0
        return max(0.0, 1.0 - self.final_cost / self.initial_cost)


def _boundary_vertices(partitioned: PartitionedGraph) -> Set[Node]:
    """Vertices adjacent to at least one crossing edge (move candidates)."""
    boundary: Set[Node] = set()
    for edge in partitioned.crossing_edges:
        boundary.add(edge.subject)
        boundary.add(edge.object)
    return boundary


def _neighbour_fragments(
    graph: RDFGraph, assignment: Dict[Node, int], vertex: Node
) -> Set[int]:
    return {assignment[neighbour] for neighbour in graph.neighbours(vertex)}


def refine_partitioning(
    partitioned: PartitionedGraph,
    max_passes: int = 3,
    balance_factor: float = 1.25,
    strategy_suffix: str = "+refined",
) -> Tuple[PartitionedGraph, RefinementReport]:
    """Refine ``partitioned`` by cost-guided boundary-vertex moves.

    Parameters
    ----------
    partitioned:
        The starting partitioning (left untouched; a new one is returned).
    max_passes:
        Maximum number of sweeps over the boundary vertices.
    balance_factor:
        No fragment may grow beyond ``balance_factor * |V| / k`` internal
        vertices, which keeps the ``max |E_i ∪ Ec_i|`` factor of the cost
        model under control.
    strategy_suffix:
        Appended to the original strategy name in the refined partitioning.

    Returns
    -------
    (refined, report):
        The refined :class:`PartitionedGraph` and a :class:`RefinementReport`.
    """
    graph = partitioned.graph
    num_fragments = partitioned.num_fragments
    assignment = partitioned.assignment
    initial_cost = partitioning_cost(partitioned).cost
    if not partitioned.crossing_edges or num_fragments < 2:
        report = RefinementReport(0, 0, initial_cost, initial_cost)
        return partitioned, report

    max_fragment_size = int(balance_factor * len(graph.vertices) / num_fragments) + 1
    fragment_sizes = [0] * num_fragments
    for fragment_id in assignment.values():
        fragment_sizes[fragment_id] += 1

    current = partitioned
    current_cost = initial_cost
    total_moves = 0
    passes_done = 0

    for _ in range(max_passes):
        passes_done += 1
        moved_this_pass = 0
        for vertex in sorted(_boundary_vertices(current), key=lambda v: v.n3()):
            source = assignment[vertex]
            for target in sorted(_neighbour_fragments(graph, assignment, vertex)):
                if target == source:
                    continue
                if fragment_sizes[target] + 1 > max_fragment_size:
                    continue
                assignment[vertex] = target
                candidate = build_partitioned_graph(
                    graph,
                    assignment,
                    num_fragments=num_fragments,
                    strategy=current.strategy,
                    validate=False,
                )
                candidate_cost = partitioning_cost(candidate).cost
                if candidate_cost < current_cost:
                    current = candidate
                    current_cost = candidate_cost
                    fragment_sizes[source] -= 1
                    fragment_sizes[target] += 1
                    moved_this_pass += 1
                    break
                assignment[vertex] = source
        total_moves += moved_this_pass
        if moved_this_pass == 0:
            break

    refined = build_partitioned_graph(
        graph,
        assignment,
        num_fragments=num_fragments,
        strategy=partitioned.strategy + strategy_suffix if total_moves else partitioned.strategy,
        validate=True,
    )
    report = RefinementReport(
        passes=passes_done,
        moves=total_moves,
        initial_cost=initial_cost,
        final_cost=partitioning_cost(refined).cost,
    )
    return refined, report
