"""Incremental maintenance of a Definition 1 partitioning under mutation.

The paper's distributed RDF graph replicates every crossing edge in both
incident fragments, which has a crucial consequence: a vertex's *home*
fragment stores **all** of its incident edges (internal and crossing alike).
Global facts about a vertex — "does it still have any edge?" — are therefore
decidable locally at its home site, and a stream of triple additions and
removals can be folded into the fragments without re-partitioning.

:class:`DeltaRouter` turns one graph mutation into the per-fragment
:class:`DeltaEffect` list that keeps Definition 1 intact:

* vertices keep a *sticky* fragment assignment — once a vertex has been
  routed somewhere it stays there for life, so replaying the same op
  sequence anywhere (coordinator, store replay, process-pool worker
  bootstrap) lands every triple in the same fragment;
* a brand-new vertex joins the fragment of an already-assigned endpoint of
  its first triple (subject's home wins when both endpoints are new and the
  subject was assigned first), falling back to a stable FNV-1a hash of its
  N3 text — never Python's randomized ``hash()``;
* removals prune internal vertices that lost their last incident edge and
  extended vertices that lost their last crossing edge, so
  :meth:`PartitionedGraph.validate` keeps holding after any op sequence.

The same router code runs everywhere a delta is applied; determinism of the
fragment contents falls out of that, not out of coordination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import Node
from ..rdf.triples import Triple
from .fragment import Fragment


def stable_fragment_of_n3(n3_text: str, num_fragments: int) -> int:
    """:func:`stable_fragment_of` on an already-serialized N3 string.

    The store's per-site bootstrap routes the delta journal on integer term
    ids and only holds N3 *text* (not parsed terms) for unseen vertices;
    hashing the text directly keeps that path decode-free while landing on
    the exact fragment the live router chose.
    """
    value = 0xCBF29CE484222325
    for char in n3_text.encode("utf-8"):
        value ^= char
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value % num_fragments


def stable_fragment_of(vertex: Node, num_fragments: int) -> int:
    """Deterministic fallback fragment for a vertex with no assigned endpoint.

    FNV-1a over the vertex's N3 text: stable across processes and platforms
    (``hash()`` is per-process randomized and would break replay parity).
    """
    return stable_fragment_of_n3(vertex.n3(), num_fragments)


@dataclass(frozen=True)
class DeltaEffect:
    """One fragment-local consequence of a graph mutation."""

    op: str  #: ``"add"`` or ``"remove"``
    fragment_id: int
    triple: Triple
    crossing: bool
    #: For crossing edges: the endpoint that is *not* internal to the target
    #: fragment (``None`` for internal edges).
    extended: Optional[Node] = None

    @property
    def internal_endpoints(self) -> Tuple[Node, ...]:
        """The endpoints internal to the target fragment."""
        if not self.crossing:
            if self.triple.subject == self.triple.object:
                return (self.triple.subject,)
            return (self.triple.subject, self.triple.object)
        if self.extended == self.triple.object:
            return (self.triple.subject,)
        return (self.triple.object,)


class DeltaRouter:
    """Routes graph ops to fragments against a (live) vertex assignment.

    The router mutates ``assignment`` in place as it assigns new vertices,
    so a :class:`~repro.partition.PartitionedGraph` handing over its own
    assignment dict stays authoritative throughout.
    """

    def __init__(self, assignment: Dict[Node, int], num_fragments: int) -> None:
        self._assignment = assignment
        self._num_fragments = num_fragments

    def _assign(self, vertex: Node, partner: Node) -> int:
        fragment_id = self._assignment.get(vertex)
        if fragment_id is None:
            partner_home = self._assignment.get(partner)
            if partner_home is not None:
                fragment_id = partner_home
            else:
                fragment_id = stable_fragment_of(vertex, self._num_fragments)
            self._assignment[vertex] = fragment_id
        return fragment_id

    def route(self, op: str, triple: Triple) -> List[DeltaEffect]:
        """The per-fragment effects of applying ``("+"|"-", triple)``."""
        subject, obj = triple.subject, triple.object
        if op == "+":
            home_s = self._assign(subject, obj)
            home_o = self._assign(obj, subject)
            kind = "add"
        else:
            # A removed triple was present, so both endpoints are assigned.
            home_s = self._assignment[subject]
            home_o = self._assignment[obj]
            kind = "remove"
        if home_s == home_o:
            return [DeltaEffect(kind, home_s, triple, crossing=False)]
        return [
            DeltaEffect(kind, home_s, triple, crossing=True, extended=obj),
            DeltaEffect(kind, home_o, triple, crossing=True, extended=subject),
        ]


def _has_incident_edge(fragment: Fragment, vertex: Node, graph: Optional[RDFGraph]) -> bool:
    """Does any edge stored in ``fragment`` touch ``vertex``?

    ``graph``, when given, must be the site's materialized graph *after* the
    mutation — its adjacency index answers in O(1).  Without it the fragment's
    edge sets are scanned.
    """
    if graph is not None:
        return graph.degree(vertex) > 0
    return any(
        vertex in (edge.subject, edge.object)
        for edge_set in (fragment.internal_edges, fragment.crossing_edges)
        for edge in edge_set
    )


def apply_delta_effect(
    fragment: Fragment,
    effect: DeltaEffect,
    graph: Optional[RDFGraph] = None,
) -> None:
    """Fold one :class:`DeltaEffect` into ``fragment``'s vertex/edge sets.

    ``graph`` is the site's materialized graph, already reflecting the op
    (used for O(1) isolation checks; optional).  Vertex memberships are
    maintained so Definition 1 holds after every effect: additions (re-)
    establish internal/extended membership, removals prune vertices whose
    last supporting edge disappeared.  Pruning is decidable locally because
    the home fragment of a vertex stores every incident edge.
    """
    triple = effect.triple
    if effect.op == "add":
        if effect.crossing:
            fragment.crossing_edges.add(triple)
            fragment.extended_vertices.add(effect.extended)
        else:
            fragment.internal_edges.add(triple)
        for vertex in effect.internal_endpoints:
            fragment.internal_vertices.add(vertex)
        return
    if effect.crossing:
        fragment.crossing_edges.discard(triple)
        assert effect.extended is not None
        if not _has_incident_edge(fragment, effect.extended, graph):
            fragment.extended_vertices.discard(effect.extended)
    else:
        fragment.internal_edges.discard(triple)
    for vertex in effect.internal_endpoints:
        if not _has_incident_edge(fragment, vertex, graph):
            fragment.internal_vertices.discard(vertex)
