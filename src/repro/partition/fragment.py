"""Fragments and distributed RDF graphs (Definition 1 of the paper).

A distributed RDF graph is a vertex-disjoint partitioning of the vertex set
into fragments.  Each fragment ``F_i`` stores:

* its *internal vertices* ``V_i`` (the partition block assigned to it),
* the *internal edges* ``E_i`` between two internal vertices,
* the *crossing edges* ``Ec_i`` — every edge with exactly one endpoint in
  ``V_i`` (replicated in both incident fragments, which is what guarantees
  that star queries can be answered inside a single fragment), and
* the *extended vertices* ``Ve_i`` — the non-local endpoints of its crossing
  edges.

:class:`PartitionedGraph` builds all fragments from a vertex assignment and
verifies the invariants of Definition 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from ..rdf.graph import RDFGraph
from ..rdf.terms import Node
from ..rdf.triples import Triple


class PartitioningError(ValueError):
    """Raised when a vertex assignment violates Definition 1."""


@dataclass
class Fragment:
    """One fragment of a distributed RDF graph, hosted by one site."""

    fragment_id: int
    internal_vertices: Set[Node] = field(default_factory=set)
    internal_edges: Set[Triple] = field(default_factory=set)
    crossing_edges: Set[Triple] = field(default_factory=set)
    extended_vertices: Set[Node] = field(default_factory=set)

    @property
    def name(self) -> str:
        return f"F{self.fragment_id}"

    @property
    def all_edges(self) -> Set[Triple]:
        """``E_i ∪ Ec_i`` — everything physically stored at the site."""
        return self.internal_edges | self.crossing_edges

    @property
    def all_vertices(self) -> Set[Node]:
        """``V_i ∪ Ve_i``."""
        return self.internal_vertices | self.extended_vertices

    @property
    def num_edges(self) -> int:
        return len(self.internal_edges) + len(self.crossing_edges)

    def is_internal(self, vertex: Node) -> bool:
        return vertex in self.internal_vertices

    def is_extended(self, vertex: Node) -> bool:
        return vertex in self.extended_vertices

    def is_crossing(self, edge: Triple) -> bool:
        return edge in self.crossing_edges

    def to_graph(self) -> RDFGraph:
        """Materialize the fragment as an RDF graph (what the site's store loads)."""
        graph = RDFGraph(name=self.name)
        graph.add_all(self.internal_edges)
        graph.add_all(self.crossing_edges)
        return graph

    def edge_labels(self) -> Set:
        """``Σ_i`` — the set of edge labels (predicates) used in the fragment."""
        return {t.predicate for t in self.all_edges}

    def stats(self) -> Dict[str, int]:
        return {
            "internal_vertices": len(self.internal_vertices),
            "extended_vertices": len(self.extended_vertices),
            "internal_edges": len(self.internal_edges),
            "crossing_edges": len(self.crossing_edges),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<Fragment {self.name} |V|={len(self.internal_vertices)} "
            f"|E|={len(self.internal_edges)} |Ec|={len(self.crossing_edges)}>"
        )


class PartitionedGraph:
    """A distributed RDF graph: the original graph plus its fragments."""

    def __init__(
        self,
        graph: RDFGraph,
        assignment: Mapping[Node, int],
        num_fragments: Optional[int] = None,
        strategy: str = "custom",
    ) -> None:
        self._graph = graph
        self._assignment: Dict[Node, int] = dict(assignment)
        self._strategy = strategy
        vertices = graph.vertices
        missing = vertices - set(self._assignment)
        if missing:
            raise PartitioningError(
                f"{len(missing)} graph vertices have no fragment assignment (e.g. {next(iter(missing))!r})"
            )
        ids = set(self._assignment[v] for v in vertices)
        if num_fragments is None:
            num_fragments = (max(ids) + 1) if ids else 1
        if ids and (min(ids) < 0 or max(ids) >= num_fragments):
            raise PartitioningError("fragment ids must lie in [0, num_fragments)")
        self._fragments: List[Fragment] = [Fragment(i) for i in range(num_fragments)]
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for vertex in self._graph.vertices:
            self._fragments[self._assignment[vertex]].internal_vertices.add(vertex)
        for triple in self._graph:
            home_s = self._assignment[triple.subject]
            home_o = self._assignment[triple.object]
            if home_s == home_o:
                self._fragments[home_s].internal_edges.add(triple)
            else:
                # Crossing edge: replicated in both incident fragments.
                self._fragments[home_s].crossing_edges.add(triple)
                self._fragments[home_s].extended_vertices.add(triple.object)
                self._fragments[home_o].crossing_edges.add(triple)
                self._fragments[home_o].extended_vertices.add(triple.subject)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def graph(self) -> RDFGraph:
        """The original, unpartitioned RDF graph."""
        return self._graph

    @property
    def strategy(self) -> str:
        """Name of the partitioning strategy that produced this partitioning."""
        return self._strategy

    @property
    def fragments(self) -> Tuple[Fragment, ...]:
        return tuple(self._fragments)

    @property
    def num_fragments(self) -> int:
        return len(self._fragments)

    def fragment_of(self, vertex: Node) -> int:
        """The id of the fragment whose internal vertices include ``vertex``."""
        return self._assignment[vertex]

    def delta_router(self):
        """A :class:`~repro.partition.delta.DeltaRouter` over the *live*
        assignment: vertices it assigns become part of this partitioning."""
        from .delta import DeltaRouter

        return DeltaRouter(self._assignment, len(self._fragments))

    def fragment(self, fragment_id: int) -> Fragment:
        return self._fragments[fragment_id]

    def __iter__(self) -> Iterator[Fragment]:
        return iter(self._fragments)

    def __len__(self) -> int:
        return len(self._fragments)

    @property
    def assignment(self) -> Dict[Node, int]:
        return dict(self._assignment)

    @property
    def crossing_edges(self) -> Set[Triple]:
        """``Ec`` — the union of all fragments' crossing edges."""
        crossing: Set[Triple] = set()
        for fragment in self._fragments:
            crossing |= fragment.crossing_edges
        return crossing

    # ------------------------------------------------------------------
    # Invariants (Definition 1) — used by tests and sanity checks
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`PartitioningError` if any Definition 1 invariant is broken."""
        all_vertices = self._graph.vertices
        seen: Set[Node] = set()
        for fragment in self._fragments:
            overlap = seen & fragment.internal_vertices
            if overlap:
                raise PartitioningError(f"vertex {next(iter(overlap))!r} is internal to two fragments")
            seen |= fragment.internal_vertices
        if seen != all_vertices:
            raise PartitioningError("internal vertex sets do not cover the graph")
        covered: Set[Triple] = set()
        for fragment in self._fragments:
            for edge in fragment.internal_edges:
                if not (fragment.is_internal(edge.subject) and fragment.is_internal(edge.object)):
                    raise PartitioningError(f"internal edge {edge.n3()} has a non-internal endpoint")
            for edge in fragment.crossing_edges:
                internal_ends = int(fragment.is_internal(edge.subject)) + int(fragment.is_internal(edge.object))
                if internal_ends != 1:
                    raise PartitioningError(f"crossing edge {edge.n3()} must have exactly one internal endpoint")
            for vertex in fragment.extended_vertices:
                if fragment.is_internal(vertex):
                    raise PartitioningError(f"extended vertex {vertex.n3()} is also internal")
                adjacent = any(
                    vertex in (edge.subject, edge.object) for edge in fragment.crossing_edges
                )
                if not adjacent:
                    raise PartitioningError(f"extended vertex {vertex.n3()} has no crossing edge")
            covered |= fragment.internal_edges
            covered |= fragment.crossing_edges
        if covered != set(self._graph):
            raise PartitioningError("fragments do not cover every edge of the graph")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        sizes = [fragment.num_edges for fragment in self._fragments]
        return {
            "strategy": self._strategy,
            "fragments": self.num_fragments,
            "triples": len(self._graph),
            "crossing_edges": len(self.crossing_edges),
            "largest_fragment_edges": max(sizes) if sizes else 0,
            "smallest_fragment_edges": min(sizes) if sizes else 0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"<PartitionedGraph strategy={self._strategy!r} fragments={self.num_fragments} "
            f"crossing={len(self.crossing_edges)}>"
        )


def build_partitioned_graph(
    graph: RDFGraph,
    assignment: Mapping[Node, int],
    num_fragments: Optional[int] = None,
    strategy: str = "custom",
    validate: bool = True,
) -> PartitionedGraph:
    """Build (and optionally validate) a :class:`PartitionedGraph`."""
    partitioned = PartitionedGraph(graph, assignment, num_fragments, strategy)
    if validate:
        partitioned.validate()
    return partitioned
