"""Graph partitioning substrate: fragments, partitioners, Section VII cost model."""

from .cost_model import (
    PartitioningCost,
    compare_partitionings,
    crossing_edge_distribution,
    crossing_edge_expectation,
    largest_fragment_size,
    partitioning_cost,
    select_best_partitioning,
    star_query_lec_feature_count,
)
from .delta import (
    DeltaEffect,
    DeltaRouter,
    apply_delta_effect,
    stable_fragment_of,
    stable_fragment_of_n3,
)
from .fragment import Fragment, PartitionedGraph, PartitioningError, build_partitioned_graph
from .partitioners import (
    HashPartitioner,
    MetisLikePartitioner,
    PARTITIONER_REGISTRY,
    Partitioner,
    SemanticHashPartitioner,
    make_partitioner,
)
from .refinement import RefinementReport, refine_partitioning
from .serialization import (
    fragment_from_payload,
    fragment_to_payload,
    fragment_to_store_payload,
    fragments_to_payloads,
    load_assignment,
    load_partitioning,
    load_workspace,
    save_assignment,
    save_workspace,
)

__all__ = [
    "DeltaEffect",
    "DeltaRouter",
    "Fragment",
    "HashPartitioner",
    "MetisLikePartitioner",
    "PARTITIONER_REGISTRY",
    "PartitionedGraph",
    "Partitioner",
    "PartitioningCost",
    "PartitioningError",
    "RefinementReport",
    "SemanticHashPartitioner",
    "apply_delta_effect",
    "build_partitioned_graph",
    "compare_partitionings",
    "crossing_edge_distribution",
    "crossing_edge_expectation",
    "fragment_from_payload",
    "fragment_to_payload",
    "fragment_to_store_payload",
    "fragments_to_payloads",
    "largest_fragment_size",
    "load_assignment",
    "load_partitioning",
    "load_workspace",
    "make_partitioner",
    "partitioning_cost",
    "refine_partitioning",
    "save_assignment",
    "save_workspace",
    "select_best_partitioning",
    "stable_fragment_of",
    "stable_fragment_of_n3",
    "star_query_lec_feature_count",
]
