"""Experiment harness: one function per paper table/figure plus report rendering."""

from .harness import (
    DEFAULT_NUM_SITES,
    PARTITIONING_STRATEGIES,
    PreparedWorkload,
    ablation_series,
    comparison_series,
    lec_feature_shipment_series,
    partitioning_cost_table,
    partitioning_performance_series,
    per_stage_table,
    planner_comparison_series,
    planner_search_report,
    prepare_workload,
    run_query,
    scalability_series,
    stage_breakdown_row,
)
from .reporting import format_series, format_table, format_value, print_experiment

__all__ = [
    "DEFAULT_NUM_SITES",
    "PARTITIONING_STRATEGIES",
    "PreparedWorkload",
    "ablation_series",
    "comparison_series",
    "format_series",
    "format_table",
    "format_value",
    "lec_feature_shipment_series",
    "partitioning_cost_table",
    "partitioning_performance_series",
    "per_stage_table",
    "planner_comparison_series",
    "planner_search_report",
    "prepare_workload",
    "print_experiment",
    "run_query",
    "scalability_series",
    "stage_breakdown_row",
]
