"""Experiment harness regenerating every table and figure of Section VIII.

Each public function corresponds to one experiment of the paper's evaluation
and returns structured rows/series; the ``benchmarks/`` modules call these
functions inside pytest-benchmark fixtures and print the rendered tables, and
EXPERIMENTS.md records the paper-vs-measured comparison.  Engines are built
through the :mod:`repro.api` registry (:func:`repro.api.make_engine`), so
every series/table accepts any registered evaluator name.

The harness deliberately builds *small* dataset instances (the simulation is
pure Python) — the goal is to reproduce the qualitative shape of every
result, as discussed in DESIGN.md.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..api.engines import engine_spec, make_engine
from ..api.result import Result
from ..baselines import BASELINE_ENGINES
from ..core.config import ABLATION_CONFIGS, EngineConfig
from ..core.engine import (
    STAGE_ASSEMBLY,
    STAGE_CANDIDATES,
    STAGE_PARTIAL_EVAL,
    STAGE_PLANNING,
    STAGE_PRUNING,
)
from ..planner.optimizer import QueryPlanner
from ..store.matcher import LocalMatcher
from ..distributed.cluster import Cluster, build_cluster
from ..partition.cost_model import partitioning_cost
from ..partition.fragment import PartitionedGraph
from ..partition.partitioners import make_partitioner as _make_partitioner
from ..rdf.graph import RDFGraph
from ..sparql.algebra import SelectQuery
from ..datasets.registry import DATASETS, LUBM_SCALES, get_dataset

#: Number of simulated sites, standing in for the paper's 12-machine cluster.
DEFAULT_NUM_SITES = 6

#: Partitioning strategies evaluated in Tables IV and Figs. 10/12.
PARTITIONING_STRATEGIES = ("hash", "semantic_hash", "metis")


# ----------------------------------------------------------------------
# Workload construction
# ----------------------------------------------------------------------
@dataclass
class PreparedWorkload:
    """A dataset instance partitioned and wrapped into a cluster."""

    dataset: str
    scale: int
    graph: RDFGraph
    partitioned: PartitionedGraph
    cluster: Cluster
    queries: Dict[str, SelectQuery] = field(default_factory=dict)


def make_partitioner(strategy: str, num_sites: int):
    """Legacy alias of :func:`repro.partition.make_partitioner`.

    .. deprecated:: 1.1
        Import ``make_partitioner`` from :mod:`repro.partition` (or use
        ``repro.open(partitioner=...)``, which partitions for you).
    """
    warnings.warn(
        "repro.bench.make_partitioner is deprecated; use "
        "repro.partition.make_partitioner (or repro.open(partitioner=...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _make_partitioner(strategy, num_sites)


def prepare_workload(
    dataset: str,
    scale: Optional[int] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
) -> PreparedWorkload:
    """Generate a dataset, partition it and wrap it into a cluster."""
    spec = get_dataset(dataset)
    scale = scale if scale is not None else spec.default_scale
    graph = spec.generate(scale)
    partitioned = _make_partitioner(strategy, num_sites).partition(graph)
    return PreparedWorkload(
        dataset=dataset,
        scale=scale,
        graph=graph,
        partitioned=partitioned,
        cluster=build_cluster(partitioned),
        queries=spec.queries(),
    )


def run_query(
    workload: PreparedWorkload,
    query_name: str,
    config: Optional[EngineConfig] = None,
    engine: str = "gstored",
) -> Result:
    """Run one benchmark query on a prepared workload with a fresh network.

    ``engine`` is any :func:`repro.api.make_engine` registry name; the
    gStoreD family takes ``config``, the fixed-strategy engines ignore it by
    requiring it to stay ``None``.  Returns the unified
    :class:`~repro.api.Result` (``.results`` / ``.statistics`` keep working
    as they did for ``DistributedResult``).
    """
    workload.cluster.reset_network()
    if engine_spec(engine).accepts_config:
        built = make_engine(engine, workload.cluster, config=config or EngineConfig.full())
    else:
        built = make_engine(engine, workload.cluster, config=config)
    with built:
        return built.execute(
            workload.queries[query_name], query_name=query_name, dataset=workload.dataset
        )


# ----------------------------------------------------------------------
# Tables I-III: per-stage evaluation
# ----------------------------------------------------------------------
def stage_breakdown_row(result: Result) -> Dict[str, object]:
    """One row of Tables I-III for a single query execution."""
    stats = result.statistics
    return {
        "query": stats.query_name,
        "selective": stats.extra.get("selective", False),
        "planning_time_ms": round(stats.find_stage(STAGE_PLANNING).parallel_time_ms, 3)
        if stats.find_stage(STAGE_PLANNING)
        else 0.0,
        "plan_cache_hit": bool(stats.counter(STAGE_PLANNING, "plan_cache_hit")),
        "candidates_time_ms": round(stats.find_stage(STAGE_CANDIDATES).parallel_time_ms, 3)
        if stats.find_stage(STAGE_CANDIDATES)
        else 0.0,
        "candidates_shipment_kb": round(stats.find_stage(STAGE_CANDIDATES).shipped_kb, 3)
        if stats.find_stage(STAGE_CANDIDATES)
        else 0.0,
        "partial_eval_time_ms": round(stats.find_stage(STAGE_PARTIAL_EVAL).parallel_time_ms, 3)
        if stats.find_stage(STAGE_PARTIAL_EVAL)
        else 0.0,
        "lec_pruning_time_ms": round(stats.find_stage(STAGE_PRUNING).parallel_time_ms, 3)
        if stats.find_stage(STAGE_PRUNING)
        else 0.0,
        "lec_pruning_shipment_kb": round(stats.find_stage(STAGE_PRUNING).shipped_kb, 3)
        if stats.find_stage(STAGE_PRUNING)
        else 0.0,
        "assembly_time_ms": round(stats.find_stage(STAGE_ASSEMBLY).parallel_time_ms, 3)
        if stats.find_stage(STAGE_ASSEMBLY)
        else 0.0,
        "total_time_ms": round(stats.total_time_ms, 3),
        "local_partial_matches": stats.counter(STAGE_PARTIAL_EVAL, "local_partial_matches"),
        "crossing_matches": stats.counter(STAGE_ASSEMBLY, "crossing_matches"),
        "results": stats.num_results,
    }


def per_stage_table(
    dataset: str,
    scale: Optional[int] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
    query_names: Optional[Sequence[str]] = None,
) -> List[Dict[str, object]]:
    """Tables I (LUBM), II (YAGO2) and III (BTC): per-stage breakdown per query."""
    workload = prepare_workload(dataset, scale, strategy, num_sites)
    names = list(query_names) if query_names is not None else list(workload.queries)
    rows = []
    for name in names:
        result = run_query(workload, name)
        rows.append(stage_breakdown_row(result))
    return rows


# ----------------------------------------------------------------------
# Fig. 9: ablation of the three optimizations
# ----------------------------------------------------------------------
def ablation_series(
    dataset: str,
    query_names: Sequence[str],
    scale: Optional[int] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
) -> Dict[str, Dict[str, float]]:
    """Fig. 9: response time of gStoreD-Basic/LA/LO/Full per query.

    Returns ``{engine label: {query: time_ms}}``.
    """
    workload = prepare_workload(dataset, scale, strategy, num_sites)
    series: Dict[str, Dict[str, float]] = {config.label: {} for config in ABLATION_CONFIGS}
    for name in query_names:
        for config in ABLATION_CONFIGS:
            result = run_query(workload, name, config)
            series[config.label][name] = round(result.statistics.total_time_ms, 3)
    return series


# ----------------------------------------------------------------------
# Planner A/B: cost-based ordering vs the seed's static order
# ----------------------------------------------------------------------
def planner_comparison_series(
    dataset: str,
    query_names: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
) -> Dict[str, Dict[str, float]]:
    """Distributed response time per query with the planner off vs on.

    The planner-on engine is run twice per query and the second (plan-cache
    warm) run is reported — the steady state of a hot query template.
    """
    workload = prepare_workload(dataset, scale, strategy, num_sites)
    names = list(query_names) if query_names is not None else list(workload.queries)
    planner_off = EngineConfig.full().with_options(use_planner=False)
    planner_on = EngineConfig.full()
    series: Dict[str, Dict[str, float]] = {"planner-off": {}, "planner-on": {}}
    for name in names:
        result = run_query(workload, name, planner_off)
        series["planner-off"][name] = round(result.statistics.total_time_ms, 3)
        run_query(workload, name, planner_on)  # warm the plan caches
        result = run_query(workload, name, planner_on)
        series["planner-on"][name] = round(result.statistics.total_time_ms, 3)
    return series


def stage_shipment_snapshot(result: Result) -> List[Tuple[str, int, int]]:
    """Per-stage ``(name, shipped_bytes, messages)`` — the determinism fingerprint."""
    return [
        (stage.name, stage.shipped_bytes, stage.messages) for stage in result.statistics.stages
    ]


def parallel_comparison_rows(
    dataset: str,
    query_names: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
    worker_counts: Sequence[int] = (1, 4),
    process_worker_counts: Sequence[int] = (),
) -> List[Dict[str, object]]:
    """Execution-runtime A/B: serial vs thread-pool vs process-pool fan-out.

    For every query the serial engine, one threaded engine per
    ``worker_counts`` entry and one process-pool engine per
    ``process_worker_counts`` entry run cache-warm over the same cluster;
    each row records the real wall-clock time of ``execute()`` per backend
    (``threads{N}_wall_ms`` / ``processes{N}_wall_ms`` columns), plus an
    ``identical`` flag asserting that every backend returned the same
    solutions *and* the same per-stage shipment fingerprint.

    Thread and process pools are shared across the queries of one backend
    column and warmed with one throwaway run per (backend, query), so the
    measured times exclude pool spin-up, worker bootstrap and cold plan
    caches — the steady state a long-lived deployment sees.  Wall-clock is
    the honest measure here: the modelled response time already assumes
    perfect site parallelism, so only the host's real concurrency (cores, or
    GIL-free processes) can move it.
    """
    from ..exec import ExecutorBackend, ProcessPoolBackend, ThreadPoolBackend

    workload = prepare_workload(dataset, scale, strategy, num_sites)
    names = list(query_names) if query_names is not None else list(workload.queries)
    rows: List[Dict[str, object]] = []

    def timed_run(
        name: str, config: EngineConfig, backend: Optional[ExecutorBackend] = None
    ) -> Tuple[Result, float]:
        workload.cluster.reset_network()
        # Built through the registry: shared backends survive close(), owned
        # ones shut down with the engine.
        with make_engine("gstored", workload.cluster, config=config, backend=backend) as engine:
            started = time.perf_counter()
            result = engine.execute(workload.queries[name], query_name=name, dataset=dataset)
            wall_ms = (time.perf_counter() - started) * 1000.0
        return result, wall_ms

    # Explicitly serial so the baseline stays the reference even under a
    # REPRO_EXECUTOR=threads / =processes environment.
    serial_config = EngineConfig.full().with_options(executor="serial")
    #: (column prefix, worker count) -> shared warm pool for that column.
    pools: Dict[Tuple[str, int], ExecutorBackend] = {}
    for workers in worker_counts:
        pools[("threads", workers)] = ThreadPoolBackend(workers)
    for workers in process_worker_counts:
        pools[("processes", workers)] = ProcessPoolBackend(workers)
    try:
        for name in names:
            timed_run(name, serial_config)  # warm the plan caches once
            baseline, serial_ms = timed_run(name, serial_config)
            row: Dict[str, object] = {
                "query": name,
                "results": len(baseline.results),
                "serial_wall_ms": round(serial_ms, 3),
            }
            identical = True
            for (kind, workers), pool in pools.items():
                config = EngineConfig.full().with_executor(kind, workers)
                timed_run(name, config, backend=pool)  # warm pool + worker caches
                result, wall_ms = timed_run(name, config, backend=pool)
                row[f"{kind}{workers}_wall_ms"] = round(wall_ms, 3)
                identical = (
                    identical
                    and result.results.same_solutions(baseline.results)
                    and stage_shipment_snapshot(result) == stage_shipment_snapshot(baseline)
                )
            row["identical"] = identical
            rows.append(row)
    finally:
        for pool in pools.values():
            pool.close()
    return rows


def planner_search_report(
    dataset: str,
    query_names: Optional[Sequence[str]] = None,
    scale: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Deterministic planner A/B on the centralized matcher.

    Search steps (candidate assignments attempted) are a machine-independent
    work measure, so these rows are stable across runs — the benchmark
    assertions use them instead of noisy wall-clock times.  Each query runs
    twice through the planner-backed matcher so the report also shows the
    plan-cache hit rate a repeated workload would see.
    """
    spec = get_dataset(dataset)
    graph = spec.generate(scale if scale is not None else spec.default_scale)
    queries = spec.queries()
    names = list(query_names) if query_names is not None else list(queries)
    planner = QueryPlanner.from_graph(graph)
    static_matcher = LocalMatcher(graph)
    planned_matcher = LocalMatcher(graph, planner=planner)
    rows: List[Dict[str, object]] = []
    for name in names:
        query = queries[name]
        static_results = static_matcher.evaluate(query)
        static_steps = static_matcher.search_steps
        planned_matcher.evaluate(query)
        planned_results = planned_matcher.evaluate(query)
        planned_steps = planned_matcher.search_steps
        assert planned_results.same_solutions(static_results)
        rows.append(
            {
                "query": name,
                "static_steps": static_steps,
                "planned_steps": planned_steps,
                "step_ratio": round(planned_steps / static_steps, 3) if static_steps else 1.0,
                "results": len(static_results),
                "plan_cache_hit_rate": round(planner.cache.hit_rate, 3),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table IV and Fig. 10: partitioning strategies
# ----------------------------------------------------------------------
def partitioning_cost_table(
    datasets: Sequence[str] = ("YAGO2", "LUBM"),
    num_sites: int = DEFAULT_NUM_SITES,
    scale: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Table IV: the Section VII cost of hash / semantic hash / METIS partitionings."""
    rows = []
    for dataset in datasets:
        spec = get_dataset(dataset)
        graph = spec.generate(scale if scale is not None else spec.default_scale)
        row: Dict[str, object] = {"dataset": dataset}
        for strategy in PARTITIONING_STRATEGIES:
            partitioned = _make_partitioner(strategy, num_sites).partition(graph)
            row[strategy] = round(partitioning_cost(partitioned).cost, 2)
        rows.append(row)
    return rows


def partitioning_performance_series(
    dataset: str,
    query_names: Sequence[str],
    scale: Optional[int] = None,
    num_sites: int = DEFAULT_NUM_SITES,
) -> Dict[str, Dict[str, float]]:
    """Fig. 10: gStoreD evaluation time per query under the three partitionings."""
    series: Dict[str, Dict[str, float]] = {}
    for strategy in PARTITIONING_STRATEGIES:
        workload = prepare_workload(dataset, scale, strategy, num_sites)
        series[strategy] = {}
        for name in query_names:
            result = run_query(workload, name)
            series[strategy][name] = round(result.statistics.total_time_ms, 3)
    return series


def lec_feature_shipment_series(
    dataset: str,
    query_names: Sequence[str],
    scale: Optional[int] = None,
    num_sites: int = DEFAULT_NUM_SITES,
) -> Dict[str, Dict[str, float]]:
    """Fig. 10(b): size of the shipped LEC features per query and partitioning."""
    series: Dict[str, Dict[str, float]] = {}
    for strategy in PARTITIONING_STRATEGIES:
        workload = prepare_workload(dataset, scale, strategy, num_sites)
        series[strategy] = {}
        for name in query_names:
            result = run_query(workload, name)
            stage = result.statistics.find_stage(STAGE_PRUNING)
            series[strategy][name] = round(stage.shipped_kb, 3) if stage else 0.0
    return series


# ----------------------------------------------------------------------
# Fig. 11: scalability over LUBM scales
# ----------------------------------------------------------------------
def scalability_series(
    query_names: Sequence[str],
    scales: Optional[Mapping[str, int]] = None,
    strategy: str = "hash",
    num_sites: int = DEFAULT_NUM_SITES,
) -> Dict[str, Dict[str, float]]:
    """Fig. 11: response time per query across LUBM dataset sizes.

    Returns ``{query: {scale label: time_ms}}`` so each query is one line of
    the figure.
    """
    scales = dict(scales) if scales is not None else dict(LUBM_SCALES)
    series: Dict[str, Dict[str, float]] = {name: {} for name in query_names}
    for label, scale in scales.items():
        workload = prepare_workload("LUBM", scale, strategy, num_sites)
        for name in query_names:
            result = run_query(workload, name)
            series[name][label] = round(result.statistics.total_time_ms, 3)
    return series


# ----------------------------------------------------------------------
# Fig. 12: online comparison against the other systems
# ----------------------------------------------------------------------
def comparison_series(
    dataset: str,
    scale: Optional[int] = None,
    num_sites: int = DEFAULT_NUM_SITES,
    query_names: Optional[Sequence[str]] = None,
    gstored_strategies: Sequence[str] = PARTITIONING_STRATEGIES,
    baselines: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 12: response time of every system per query.

    Baselines run over the hash partitioning (their native layouts replicate
    or re-shard data anyway); gStoreD runs once per partitioning strategy,
    mirroring the ``gStoreD-Hash`` / ``gStoreD-SemanticHash`` / ``gStoreD-METIS``
    bars of the figure.  ``baselines`` entries are
    :func:`repro.api.make_engine` names or aliases (the legacy report names
    ``DREAM`` / ``S2RDF`` / ``CliqueSquare`` / ``S2X`` still work, and
    ``"centralized"`` adds the single-store ground truth as a series).
    """
    spec = get_dataset(dataset)
    chosen_queries = list(query_names) if query_names is not None else list(spec.queries())
    baseline_names = list(baselines) if baselines is not None else list(BASELINE_ENGINES)
    series: Dict[str, Dict[str, float]] = {}

    hash_workload = prepare_workload(dataset, scale, "hash", num_sites)
    for baseline_name in baseline_names:
        with make_engine(baseline_name, hash_workload.cluster) as engine:
            series[baseline_name] = {}
            for name in chosen_queries:
                hash_workload.cluster.reset_network()
                result = engine.execute(
                    hash_workload.queries[name], query_name=name, dataset=dataset
                )
                series[baseline_name][name] = round(result.statistics.total_time_ms, 3)

    for strategy in gstored_strategies:
        label = f"gStoreD-{strategy}"
        workload = (
            hash_workload if strategy == "hash" else prepare_workload(dataset, scale, strategy, num_sites)
        )
        series[label] = {}
        for name in chosen_queries:
            result = run_query(workload, name)
            series[label][name] = round(result.statistics.total_time_ms, 3)
    return series
