"""Plain-text table and series rendering for the experiment harness.

The benchmark modules print, for every table and figure of the paper, the
same rows/series the paper reports (times, shipments, counts).  This module
owns the formatting so the output looks consistent across experiments and is
easy to diff against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_value(value: object) -> str:
    """Human-friendly rendering of one cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), max(len(cells[i]) for cells in rendered))
        for i, column in enumerate(columns)
    ]
    header = " | ".join(str(column).ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    lines = [header, separator]
    for cells in rendered:
        lines.append(" | ".join(cells[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(title: str, series: Mapping[str, Mapping[str, object]]) -> str:
    """Render a figure-style series: one row per x-value, one column per line."""
    labels = list(series)
    x_values: List[str] = []
    for points in series.values():
        for x in points:
            if x not in x_values:
                x_values.append(x)
    rows = []
    for x in x_values:
        row: Dict[str, object] = {"x": x}
        for label in labels:
            row[label] = series[label].get(x, "")
        rows.append(row)
    return f"{title}\n" + format_table(rows, columns=["x", *labels])


def print_experiment(title: str, body: str) -> None:
    """Print one experiment block with a banner (used by benchmarks/examples)."""
    banner = "=" * max(len(title), 20)
    print(f"\n{banner}\n{title}\n{banner}\n{body}")
